// qat_backend.hpp — pluggable Qat register-file backends (paper §1.2, §5).
//
// The coprocessor's architectural surface — 256 registers, the Table 3
// operation set, the non-destructive measurement family — is independent of
// how register *values* are stored.  The paper describes two storage models:
//
//   * dense  — each register is a raw 2^E-bit AoB, exactly what the hardware
//     register file holds (and what the class-project Verilog implements);
//   * RE     — each register is a run-length-encoded sequence of interned
//     chunk symbols over one shared ChunkPool (re.hpp), the representation
//     §1.2 credits with "as much as an exponential factor" savings on the
//     low-entropy states real programs build.
//
// QatBackend is that seam.  DenseQatBackend reproduces the historical
// std::vector<Aob> behaviour bit for bit; ReQatBackend keeps every register
// as a copy-on-write shared Re so register moves (`swap`, the hot
// `cnot`/`cswap` shuffles of factoring kernels) exchange pointers instead of
// copying megabytes, and lifts the entanglement ceiling past kMaxAobWays —
// storage is proportional to run count, not 2^E.
//
// QatEngine (src/arch) layers ISA semantics, 16-bit channel truncation and
// port statistics on top; VirtualQat (virtual_qat.hpp) is a thin veneer over
// ReQatBackend.  tests/test_qat_backend.cpp drives both backends through
// identical random Table 3 sequences and requires equality after every op.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pbp/aob.hpp"
#include "pbp/pbit.hpp"
#include "pbp/re.hpp"
#include "pbp/serialize.hpp"
#include "pbp/shard.hpp"

namespace pbp {

/// Entanglement ceiling for the RE backend.  Run counts — not 2^E — bound
/// storage, so this is set by the 64-bit channel index math and by how much
/// decompression to_aob() we are willing to forbid, not by memory.
inline constexpr unsigned kMaxReWays = 40;

/// Abstract Qat register file: Table 3 operations + measurement family over
/// `num_regs` registers of 2^ways channels.  Register indices wrap modulo
/// num_regs (the hardware masks its 8-bit register field the same way).
class QatBackend {
 public:
  virtual ~QatBackend() = default;

  virtual Backend kind() const = 0;
  unsigned ways() const { return ways_; }
  std::size_t channels() const { return std::size_t{1} << ways_; }
  unsigned num_regs() const { return num_regs_; }

  // --- Table 3 register operations ---
  virtual void zero(unsigned a) = 0;
  virtual void one(unsigned a) = 0;
  virtual void had(unsigned a, unsigned k) = 0;
  virtual void not_(unsigned a) = 0;
  virtual void cnot(unsigned a, unsigned b) = 0;
  virtual void ccnot(unsigned a, unsigned b, unsigned c) = 0;
  virtual void swap(unsigned a, unsigned b) = 0;
  virtual void cswap(unsigned a, unsigned b, unsigned c) = 0;
  virtual void and_(unsigned a, unsigned b, unsigned c) = 0;
  virtual void or_(unsigned a, unsigned b, unsigned c) = 0;
  virtual void xor_(unsigned a, unsigned b, unsigned c) = 0;

  // --- Non-destructive measurement family (§2.7), full-width channels ---
  virtual bool meas(unsigned a, std::size_t ch) const = 0;
  virtual std::optional<std::size_t> next_one(unsigned a,
                                              std::size_t ch) const = 0;
  virtual std::size_t pop_after(unsigned a, std::size_t ch) const = 0;
  virtual std::size_t popcount(unsigned a) const = 0;
  virtual bool any(unsigned a) const = 0;
  virtual bool all(unsigned a) const = 0;

  // --- Register access / observability ---
  /// Materialize a register densely.  Throws for RE registers wider than
  /// kMaxAobWays — at that size there is no dense form to give.
  virtual Aob reg_aob(unsigned a) const = 0;
  virtual void set_reg_aob(unsigned a, const Aob& v) = 0;
  /// Write one channel of one register (fault injection, checkpoint repair).
  virtual void set_channel(unsigned a, std::size_t ch, bool v) = 0;
  /// "01101..." debug rendering without full decompression.
  virtual std::string reg_string(unsigned a, std::size_t max_bits) const = 0;
  /// Bytes the register file occupies in this representation (the §1.2
  /// storage claim, measurable).
  virtual std::size_t storage_bytes() const = 0;

  // --- Fault-tolerance hooks ---
  /// Lower the RE chunk-pool symbol ceiling (forced-exhaustion fault
  /// injection).  Dense register files have no pool; the call is a no-op.
  virtual void set_symbol_cap(std::size_t) {}

  // --- Integrity layer ---
  // Every stored 64-bit payload word optionally carries a (72,64) SECDED
  // byte.  Operations verify their operand registers before reading and
  // re-encode destinations after writing; an uncorrectable upset (under
  // kDetect, any upset) surfaces as CorruptionError from the faulting op,
  // with the register file otherwise unchanged by that op.

  /// Select the protection policy; (re)builds the check sidecars, so the
  /// mode can be applied to a freshly deserialized register file.
  virtual void set_ecc_mode(EccMode m) = 0;
  EccMode ecc_mode() const { return ecc_; }

  /// Verify one register's payload words on the access path (kCorrect
  /// repairs single-bit upsets); throws CorruptionError.  const because the
  /// measurement paths verify too: a repair preserves the logical value
  /// (the classic logical-const ECC pattern), and the tallies it bumps are
  /// mutable bookkeeping.
  virtual void verify_reg(unsigned a) const = 0;

  // --- Verification scheduling (epoch policy) ---
  // State verified within the last `epoch` ticks of the simulators' monotone
  // retired-instruction clock carries a fresh `verified_at` stamp and is not
  // re-verified on access.  Epoch 1 (the default) makes nothing ever fresh —
  // exactly the historical verify-on-every-access semantics.  The stamps are
  // pure policy: scrubs ignore them (and re-stamp what they verify), writes
  // re-encode rather than stamp-launder, and they are never serialized.

  /// Set the verification epoch in retired instructions, clamped into
  /// [1, kMaxEccEpoch] so the freshness arithmetic stays far from wrap.
  virtual void set_ecc_epoch(std::uint64_t n) { ecc_epoch_ = clamp_ecc_epoch(n); }
  std::uint64_t ecc_epoch() const { return ecc_epoch_; }

  /// Advance the verification clock (call with the retired-instruction
  /// total after each commit).
  virtual void ecc_tick(std::uint64_t now) { ecc_now_ = now; }

  /// Verify (and under kCorrect repair) the whole store; never throws.
  virtual EccSweep scrub_ecc() = 0;

  /// Storage-upset model: flip the raw stored bit backing channel `ch` of
  /// register r — for the RE backend that bit lives in a shared pool
  /// chunk, so sibling registers referencing the same symbol corrupt too.
  virtual void storage_upset(unsigned r, std::size_t ch) = 0;

  /// Drain the access-path verification tallies since the last drain.
  virtual EccSweep take_ecc_counts() = 0;

  /// Check-sidecar footprint in bytes (0 when protection is off).
  virtual std::size_t ecc_bytes() const = 0;

  // --- Intra-register threading ---
  // Policy, not state: the thread count shards the word sweeps of wide
  // dense registers across a persistent worker pool, never changes any
  // architectural result (shard ranges are disjoint and deterministic), is
  // never serialized, and survives backend migration only because QatEngine
  // re-applies it.  Backends without wide word sweeps ignore it.

  /// Shard wide per-register sweeps across n threads (0 is clamped to 1).
  virtual void set_threads(unsigned) {}
  virtual unsigned threads() const { return 1; }

  /// Snapshot the full register-file state: dense as raw AoB word dumps, RE
  /// as the pool's chunk symbols plus per-register run lists.  Restored by
  /// deserialize_qat_backend.  ECC sidecars are NOT serialized — the
  /// restorer re-applies its policy via set_ecc_mode, and the checkpoint
  /// runner scrubs before every snapshot so corruption cannot be laundered
  /// through a save/restore cycle.
  virtual void serialize(ByteWriter& w) const = 0;

 protected:
  QatBackend(unsigned ways, unsigned num_regs);
  unsigned idx(unsigned r) const { return r % num_regs_; }

  /// A stamp is the clock value at verification time plus one (so 0 means
  /// "never verified").  Fresh iff the clock has advanced fewer than
  /// `ecc_epoch_` ticks since then; epoch 1 is never fresh.  Subtraction
  /// form (ecc.hpp): the additive form wrapped for epochs near UINT64_MAX.
  bool epoch_fresh(std::uint64_t stamp) const {
    return ecc_epoch_fresh(ecc_now_, stamp, ecc_epoch_);
  }
  std::uint64_t stamp_now() const { return ecc_now_ + 1; }

  unsigned ways_;
  unsigned num_regs_;
  EccMode ecc_ = EccMode::kOff;
  std::uint64_t ecc_epoch_ = 1;
  std::uint64_t ecc_now_ = 0;
};

/// Dense backend: the hardware model.  One materialized Aob per register;
/// identical semantics (and identical memory behaviour) to the historical
/// QatEngine register file.
class DenseQatBackend final : public QatBackend {
 public:
  DenseQatBackend(unsigned ways, unsigned num_regs);

  Backend kind() const override { return Backend::kDense; }

  void zero(unsigned a) override;
  void one(unsigned a) override;
  void had(unsigned a, unsigned k) override;
  void not_(unsigned a) override;
  void cnot(unsigned a, unsigned b) override;
  void ccnot(unsigned a, unsigned b, unsigned c) override;
  void swap(unsigned a, unsigned b) override;
  void cswap(unsigned a, unsigned b, unsigned c) override;
  void and_(unsigned a, unsigned b, unsigned c) override;
  void or_(unsigned a, unsigned b, unsigned c) override;
  void xor_(unsigned a, unsigned b, unsigned c) override;

  bool meas(unsigned a, std::size_t ch) const override;
  std::optional<std::size_t> next_one(unsigned a,
                                      std::size_t ch) const override;
  std::size_t pop_after(unsigned a, std::size_t ch) const override;
  std::size_t popcount(unsigned a) const override;
  bool any(unsigned a) const override;
  bool all(unsigned a) const override;

  Aob reg_aob(unsigned a) const override;
  void set_reg_aob(unsigned a, const Aob& v) override;
  void set_channel(unsigned a, std::size_t ch, bool v) override;
  std::string reg_string(unsigned a, std::size_t max_bits) const override;
  std::size_t storage_bytes() const override;

  void set_ecc_mode(EccMode m) override;
  void verify_reg(unsigned a) const override;
  EccSweep scrub_ecc() override;
  void storage_upset(unsigned r, std::size_t ch) override;
  EccSweep take_ecc_counts() override;
  std::size_t ecc_bytes() const override;

  void set_threads(unsigned n) override;
  unsigned threads() const override { return threads_; }

  void serialize(ByteWriter& w) const override;
  static std::unique_ptr<DenseQatBackend> deserialize(ByteReader& r);

  /// Power-on reset in place: every register all-zero, ECC off, sidecars
  /// empty, verification clock at construction values, threading policy back
  /// to 1 — bit-identical to a freshly constructed backend of the same
  /// geometry, but the slab (and the sidecar's capacity) stays allocated and
  /// cache-hot.  Cost is O(dirty slots), not O(num_regs x words_per_reg):
  /// only slots some operation may have made nonzero are re-zeroed.  The
  /// serve layer's simulator pool (src/serve/sim_pool.hpp) is built on this.
  void reset_state();

  /// Registers narrower than this many words are never sharded — the
  /// hand-off latency of even a warm pool dwarfs the sweep itself below
  /// 16 Ki words (ways 20).
  static constexpr std::size_t kShardMinWords = std::size_t{1} << 14;

 private:
  /// Register i's payload words inside the slab.  Mutable-through-const for
  /// the same reason regs_ used to be mutable: the const measurement paths
  /// verify, and a verify may repair in place.
  std::uint64_t* wp(unsigned i) const {
    return slab_.data() + std::size_t{slot_[i]} * words_per_reg_;
  }
  /// Register i's slice of the flat check-byte sidecar (slot-indexed, so a
  /// swap() slot exchange carries payload + sidecar + stamp together).
  std::uint8_t* chk(unsigned i) const {
    return check_.data() + std::size_t{slot_[i]} * words_per_reg_;
  }
  std::uint64_t& vstamp(unsigned i) const { return verified_at_[slot_[i]]; }
  void mark_dirty(unsigned i) { dirty_[slot_[i]] = true; }
  /// Rebuild register i's check bytes after its payload was fully
  /// overwritten with trusted data; stamps the register verified.
  void encode_reg(unsigned i);
  /// After a fused derivation, the destination is only as fresh as the
  /// stalest register that participated — never fresher (a derived check
  /// byte consistently encodes whatever the operands held, including a
  /// latent upset an elided verify did not look at).  Only valid with ECC
  /// on (verified_at_ is empty otherwise).
  void stamp_dest(unsigned i, std::uint64_t stamp) { vstamp(i) = stamp; }

  /// Run fn(begin, end, shard) over a partition of [0, words_per_reg_):
  /// through the worker pool when the register is wide enough to shard,
  /// inline as one shard otherwise.  Ranges are 64-word aligned so SECDED
  /// check chunks and vector blocks never straddle shards.
  template <typename Fn>
  void for_shards(Fn&& fn) const {
    if (shards_ && words_per_reg_ >= kShardMinWords) {
      shards_->run(words_per_reg_, 64, fn);
    } else {
      fn(std::size_t{0}, words_per_reg_, 0u);
    }
  }

  std::size_t words_per_reg_ = 1;
  unsigned threads_ = 1;
  // Lazily built by set_threads(>1); mutable because the const measurement
  // paths verify (and therefore sweep) too.
  mutable std::unique_ptr<ShardPool> shards_;
  // One flat arena backing every register's payload words (num_regs x
  // words_per_reg), with slot_[r] mapping register r to its slab slot so
  // swap() stays the O(1) exchange the old per-register std::vector swap
  // was.  Mutable: verify_reg repairs through the const measurement paths
  // (logical value preserved) and tallies into pending_.
  mutable std::vector<std::uint64_t> slab_;
  std::vector<std::uint32_t> slot_;  // register -> slab slot
  // Per-slot "payload may hold nonzero words" flags driving the O(dirty)
  // reset_state() sweep.  zero() clears its slot's flag (the payload is
  // back at power-on value); every other payload write sets it.
  std::vector<bool> dirty_;
  // Flat num_regs x words_per_reg sidecar; empty (zero bytes) when off —
  // allocated lazily by the first set_ecc_mode(detect|correct).  Slot-
  // indexed, like verified_at_.
  mutable std::vector<std::uint8_t> check_;
  mutable std::vector<std::uint64_t> verified_at_;  // per-slot epoch stamps
  mutable EccSweep pending_;  // access-path tallies awaiting take_ecc_counts()
};

/// RE backend: registers are copy-on-write shared Re values over one shared
/// ChunkPool.  Moves (`swap`) and the constant loads (`zero`/`one`/`had`)
/// are pointer operations; data operations run run-lockstep with chunk-level
/// memoization, so cost tracks run counts rather than 2^E.
class ReQatBackend final : public QatBackend {
 public:
  /// ways in [chunk_ways, kMaxReWays].  chunk_ways is clamped down to ways
  /// for tiny register files so small-E differential tests stay exact.
  ReQatBackend(unsigned ways, unsigned num_regs, unsigned chunk_ways = 12);
  /// Register file over an externally owned (possibly cross-job shared)
  /// chunk pool; requires ways >= pool->chunk_ways().  The serve layer's
  /// sharded pool (ShardedChunkPool) hands concurrency-safe stripes in
  /// through here so concurrent RE jobs stop serializing on private pools.
  ReQatBackend(std::shared_ptr<ChunkPool> pool, unsigned ways,
               unsigned num_regs);
  // Movable so VirtualQat::restore can swap in a deserialized register file.
  ReQatBackend(ReQatBackend&&) = default;
  ReQatBackend& operator=(ReQatBackend&&) = default;

  Backend kind() const override { return Backend::kCompressed; }
  const std::shared_ptr<ChunkPool>& pool() const { return pool_; }

  void zero(unsigned a) override;
  void one(unsigned a) override;
  void had(unsigned a, unsigned k) override;
  void not_(unsigned a) override;
  void cnot(unsigned a, unsigned b) override;
  void ccnot(unsigned a, unsigned b, unsigned c) override;
  void swap(unsigned a, unsigned b) override;
  void cswap(unsigned a, unsigned b, unsigned c) override;
  void and_(unsigned a, unsigned b, unsigned c) override;
  void or_(unsigned a, unsigned b, unsigned c) override;
  void xor_(unsigned a, unsigned b, unsigned c) override;

  bool meas(unsigned a, std::size_t ch) const override;
  std::optional<std::size_t> next_one(unsigned a,
                                      std::size_t ch) const override;
  std::size_t pop_after(unsigned a, std::size_t ch) const override;
  std::size_t popcount(unsigned a) const override;
  bool any(unsigned a) const override;
  bool all(unsigned a) const override;

  Aob reg_aob(unsigned a) const override;
  void set_reg_aob(unsigned a, const Aob& v) override;
  void set_channel(unsigned a, std::size_t ch, bool v) override;
  std::string reg_string(unsigned a, std::size_t max_bits) const override;
  std::size_t storage_bytes() const override;

  void set_symbol_cap(std::size_t n) override { pool_->set_max_symbols(n); }

  void set_ecc_mode(EccMode m) override;
  void verify_reg(unsigned a) const override { guard(a); }
  EccSweep scrub_ecc() override { return pool_->scrub_ecc(); }
  void storage_upset(unsigned r, std::size_t ch) override;
  EccSweep take_ecc_counts() override { return pool_->take_ecc_counts(); }
  std::size_t ecc_bytes() const override { return pool_->ecc_bytes(); }
  // Epoch policy lives with the storage it guards: the shared pool.
  void set_ecc_epoch(std::uint64_t n) override {
    QatBackend::set_ecc_epoch(n);
    pool_->set_ecc_epoch(ecc_epoch_);
  }
  void ecc_tick(std::uint64_t now) override {
    QatBackend::ecc_tick(now);
    pool_->ecc_tick(now);
  }

  void serialize(ByteWriter& w) const override;
  static std::unique_ptr<ReQatBackend> deserialize(ByteReader& r);

  /// Direct compressed view (VirtualQat's public surface).
  const Re& re_reg(unsigned a) const { return *regs_[idx(a)]; }
  /// Total RLE runs across the register file (a compression metric).
  std::size_t total_runs() const;

 private:
  const Re& get(unsigned r) const { return *regs_[idx(r)]; }
  void put(unsigned r, Re v) {
    regs_[idx(r)] = std::make_shared<const Re>(std::move(v));
  }
  /// Verify every pool symbol register r's runs reference.  Callable from
  /// the const measurement paths: repairs happen inside the shared pool
  /// and preserve the logical value.
  void guard(unsigned r) const;
  /// Memoized constant registers: repeated zero/one/had of the same pattern
  /// share one immutable Re (copy-on-write: a later write to the register
  /// replaces the pointer, never the shared value).
  std::shared_ptr<const Re> constant(unsigned which_k);

  std::shared_ptr<ChunkPool> pool_;
  std::vector<std::shared_ptr<const Re>> regs_;
  // Slot 0 = zeros, 1 = ones, 2+k = H(k); filled lazily.
  std::vector<std::shared_ptr<const Re>> constants_;
};

/// Bytes a dense register file of this geometry materializes (the §1.2
/// storage claim, and the serve layer's admission-control unit): num_regs
/// registers of 2^ways bits.  This is what an RE→dense migration would
/// allocate, so admission control and the QatEngine migration guard both
/// price jobs with it.  Saturates at SIZE_MAX instead of overflowing for
/// ways near the 64-bit limit.
std::size_t dense_backend_bytes(unsigned ways, unsigned num_regs = 256);

/// Factory keyed by the pbit-layer Backend enum (the user-facing choice).
std::unique_ptr<QatBackend> make_qat_backend(Backend kind, unsigned ways,
                                             unsigned num_regs = 256,
                                             unsigned chunk_ways = 12);

/// Rebuild a backend from a QatBackend::serialize stream (either kind).
/// Throws std::runtime_error on a malformed stream.
std::unique_ptr<QatBackend> deserialize_qat_backend(ByteReader& r);

}  // namespace pbp
