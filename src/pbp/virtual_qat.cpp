#include "pbp/virtual_qat.hpp"

#include <stdexcept>

namespace pbp {

VirtualQat::VirtualQat(unsigned ways, unsigned chunk_ways, unsigned num_regs)
    : ways_(ways), pool_(std::make_shared<ChunkPool>(chunk_ways)) {
  if (num_regs == 0) throw std::invalid_argument("VirtualQat: no registers");
  regs_.reserve(num_regs);
  for (unsigned i = 0; i < num_regs; ++i) {
    regs_.push_back(Re::zeros(pool_, ways));
  }
}

void VirtualQat::zero(unsigned a) { rw(a) = Re::zeros(pool_, ways_); }

void VirtualQat::one(unsigned a) { rw(a) = Re::ones(pool_, ways_); }

void VirtualQat::had(unsigned a, unsigned k) {
  rw(a) = Re::hadamard(pool_, ways_, k);
}

void VirtualQat::not_(unsigned a) { rw(a).invert(); }

void VirtualQat::cnot(unsigned a, unsigned b) {
  rw(a).apply(BitOp::Xor, reg(b));
}

void VirtualQat::ccnot(unsigned a, unsigned b, unsigned c) {
  Re t = reg(b);
  t.apply(BitOp::And, reg(c));
  rw(a).apply(BitOp::Xor, t);
}

void VirtualQat::swap(unsigned a, unsigned b) {
  if (a % regs_.size() == b % regs_.size()) return;
  Re::swap_values(rw(a), rw(b));
}

void VirtualQat::cswap(unsigned a, unsigned b, unsigned c) {
  if (a % regs_.size() == b % regs_.size()) return;
  const Re control = reg(c);  // read once: aliasing-safe, like the hardware
  Re::cswap(rw(a), rw(b), control);
}

void VirtualQat::and_(unsigned a, unsigned b, unsigned c) {
  Re t = reg(b);
  t.apply(BitOp::And, reg(c));
  rw(a) = std::move(t);
}

void VirtualQat::or_(unsigned a, unsigned b, unsigned c) {
  Re t = reg(b);
  t.apply(BitOp::Or, reg(c));
  rw(a) = std::move(t);
}

void VirtualQat::xor_(unsigned a, unsigned b, unsigned c) {
  Re t = reg(b);
  t.apply(BitOp::Xor, reg(c));
  rw(a) = std::move(t);
}

bool VirtualQat::meas(unsigned a, std::size_t ch) const {
  return reg(a).get(ch);
}

std::size_t VirtualQat::next(unsigned a, std::size_t ch) const {
  const auto r = reg(a).next_one(ch);
  return r ? *r : 0;
}

std::size_t VirtualQat::pop_after(unsigned a, std::size_t ch) const {
  return reg(a).popcount_after(ch);
}

std::size_t VirtualQat::popcount(unsigned a) const {
  return reg(a).popcount();
}

bool VirtualQat::any(unsigned a) const { return reg(a).any(); }

bool VirtualQat::all(unsigned a) const { return reg(a).all(); }

std::size_t VirtualQat::storage_bytes() const {
  std::size_t n = 0;
  for (const Re& r : regs_) n += r.compressed_bytes();
  return n;
}

}  // namespace pbp
