#include "pbp/virtual_qat.hpp"

namespace pbp {

VirtualQat::VirtualQat(unsigned ways, unsigned chunk_ways, unsigned num_regs)
    : impl_(ways, num_regs, chunk_ways) {}

void VirtualQat::restore(ByteReader& r) {
  auto backend = deserialize_qat_backend(r);
  auto* re = dynamic_cast<ReQatBackend*>(backend.get());
  if (re == nullptr) {
    throw std::runtime_error("VirtualQat: snapshot is not an RE register file");
  }
  // ECC policy survives restore (snapshots carry payload, not policy).
  const EccMode mode = impl_.ecc_mode();
  const std::uint64_t epoch = impl_.ecc_epoch();
  impl_ = std::move(*re);
  impl_.set_ecc_mode(mode);
  impl_.set_ecc_epoch(epoch);
}

}  // namespace pbp
