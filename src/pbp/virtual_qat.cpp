#include "pbp/virtual_qat.hpp"

namespace pbp {

VirtualQat::VirtualQat(unsigned ways, unsigned chunk_ways, unsigned num_regs)
    : impl_(ways, num_regs, chunk_ways) {}

void VirtualQat::restore(ByteReader& r) {
  auto backend = deserialize_qat_backend(r);
  auto* re = dynamic_cast<ReQatBackend*>(backend.get());
  if (re == nullptr) {
    throw std::runtime_error("VirtualQat: snapshot is not an RE register file");
  }
  impl_ = std::move(*re);
}

}  // namespace pbp
