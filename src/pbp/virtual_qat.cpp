#include "pbp/virtual_qat.hpp"

namespace pbp {

VirtualQat::VirtualQat(unsigned ways, unsigned chunk_ways, unsigned num_regs)
    : impl_(ways, num_regs, chunk_ways) {}

}  // namespace pbp
