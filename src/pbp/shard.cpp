#include "pbp/shard.hpp"

#include <algorithm>
#include <cstdint>

namespace pbp {

std::pair<std::size_t, std::size_t> shard_range(std::size_t n,
                                                std::size_t align,
                                                unsigned shard,
                                                unsigned threads) {
  if (threads == 0) threads = 1;
  if (align == 0) align = 1;
  const std::size_t chunks = (n + align - 1) / align;
  const std::size_t per = chunks / threads;
  const std::size_t rem = chunks % threads;
  const std::size_t c0 =
      static_cast<std::size_t>(shard) * per + std::min<std::size_t>(shard, rem);
  const std::size_t c1 = c0 + per + (shard < rem ? 1 : 0);
  return {std::min(c0 * align, n), std::min(c1 * align, n)};
}

ShardPool::ShardPool(unsigned threads) : threads_(threads < 1 ? 1 : threads) {
  errors_.resize(threads_);
  workers_.reserve(threads_ - 1);
  for (unsigned s = 1; s < threads_; ++s) {
    workers_.emplace_back([this, s] { worker_main(s); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ShardPool::worker_main(unsigned shard) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t, unsigned)>* fn;
    std::size_t n, align;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = job_fn_;
      n = job_n_;
      align = job_align_;
    }
    const auto [begin, end] = shard_range(n, align, shard, threads_);
    std::exception_ptr err;
    if (begin < end) {
      try {
        (*fn)(begin, end, shard);
      } catch (...) {
        err = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      errors_[shard] = err;
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ShardPool::run(
    std::size_t n, std::size_t align,
    const std::function<void(std::size_t, std::size_t, unsigned)>& fn) {
  if (threads_ == 1) {
    if (n != 0) fn(0, n, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_n_ = n;
    job_align_ = align;
    job_fn_ = &fn;
    remaining_ = threads_ - 1;
    std::fill(errors_.begin(), errors_.end(), std::exception_ptr{});
    ++generation_;
  }
  cv_start_.notify_all();

  // The caller is shard 0.
  const auto [begin, end] = shard_range(n, align, 0, threads_);
  if (begin < end) {
    try {
      fn(begin, end, 0);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      errors_[0] = std::current_exception();
    }
  }

  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return remaining_ == 0; });
    job_fn_ = nullptr;
    for (auto& e : errors_) {
      if (e) {
        std::exception_ptr err = e;
        lk.unlock();
        std::rethrow_exception(err);
      }
    }
  }
}

}  // namespace pbp
