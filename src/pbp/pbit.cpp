#include "pbp/pbit.hpp"

#include <stdexcept>

#include "pbp/hadamard.hpp"

namespace pbp {

PbpContext::PbpContext(unsigned ways, Backend backend, unsigned chunk_ways)
    : ways_(ways), backend_(backend) {
  if (backend == Backend::kCompressed) {
    if (chunk_ways > ways) {
      throw std::invalid_argument("PbpContext: chunk_ways > ways");
    }
    pool_ = std::make_shared<ChunkPool>(chunk_ways);
  } else if (ways > kMaxAobWays) {
    throw std::invalid_argument("PbpContext: dense backend limited to 2^" +
                                std::to_string(kMaxAobWays) + " channels");
  }
}

std::shared_ptr<PbpContext> PbpContext::create(unsigned ways, Backend backend,
                                               unsigned chunk_ways) {
  return std::shared_ptr<PbpContext>(
      new PbpContext(ways, backend, chunk_ways));
}

Pbit PbpContext::zero() {
  if (backend_ == Backend::kDense) return Pbit(Aob::zeros(ways_));
  return Pbit(Re::zeros(pool_, ways_));
}

Pbit PbpContext::one() {
  if (backend_ == Backend::kDense) return Pbit(Aob::ones(ways_));
  return Pbit(Re::ones(pool_, ways_));
}

Pbit PbpContext::hadamard(unsigned k) {
  if (backend_ == Backend::kDense) return Pbit(hadamard_generate(ways_, k));
  return Pbit(Re::hadamard(pool_, ways_, k));
}

Pbit PbpContext::from_aob(const Aob& a) {
  if (a.ways() != ways_) throw std::invalid_argument("from_aob: wrong ways");
  if (backend_ == Backend::kDense) return Pbit(a);
  return Pbit(Re::from_aob(pool_, a));
}

unsigned Pbit::ways() const {
  return std::visit([](const auto& v) { return v.ways(); }, v_);
}

void Pbit::apply(BitOp op, const Pbit& o) {
  if (v_.index() != o.v_.index()) {
    throw std::invalid_argument("Pbit: mixing dense and compressed values");
  }
  if (auto* a = std::get_if<Aob>(&v_)) {
    const Aob& b = std::get<Aob>(o.v_);
    switch (op) {
      case BitOp::And:
        *a &= b;
        break;
      case BitOp::Or:
        *a |= b;
        break;
      case BitOp::Xor:
        *a ^= b;
        break;
      case BitOp::AndNot:
        *a &= ~b;
        break;
    }
  } else {
    std::get<Re>(v_).apply(op, std::get<Re>(o.v_));
  }
}

Pbit Pbit::operator&(const Pbit& o) const {
  Pbit r = *this;
  r.apply(BitOp::And, o);
  return r;
}

Pbit Pbit::operator|(const Pbit& o) const {
  Pbit r = *this;
  r.apply(BitOp::Or, o);
  return r;
}

Pbit Pbit::operator^(const Pbit& o) const {
  Pbit r = *this;
  r.apply(BitOp::Xor, o);
  return r;
}

Pbit Pbit::and_not(const Pbit& o) const {
  Pbit r = *this;
  r.apply(BitOp::AndNot, o);
  return r;
}

Pbit Pbit::operator~() const {
  Pbit r = *this;
  r.pauli_x();
  return r;
}

void Pbit::pauli_x() {
  std::visit([](auto& v) { v.invert(); }, v_);
}

void Pbit::cnot(const Pbit& control) { apply(BitOp::Xor, control); }

void Pbit::ccnot(const Pbit& c1, const Pbit& c2) {
  Pbit t = c1;
  t.apply(BitOp::And, c2);
  apply(BitOp::Xor, t);
}

void Pbit::swap_values(Pbit& a, Pbit& b) noexcept { a.v_.swap(b.v_); }

void Pbit::cswap(Pbit& a, Pbit& b, const Pbit& control) {
  if (auto* aa = std::get_if<Aob>(&a.v_)) {
    Aob::cswap(*aa, std::get<Aob>(b.v_), std::get<Aob>(control.v_));
  } else {
    Re::cswap(std::get<Re>(a.v_), std::get<Re>(b.v_),
              std::get<Re>(control.v_));
  }
}

bool Pbit::meas(std::size_t channel) const {
  return std::visit([&](const auto& v) { return v.get(channel); }, v_);
}

std::optional<std::size_t> Pbit::next_one(std::size_t ch) const {
  return std::visit([&](const auto& v) { return v.next_one(ch); }, v_);
}

std::size_t Pbit::pop_after(std::size_t ch) const {
  return std::visit([&](const auto& v) { return v.popcount_after(ch); }, v_);
}

std::size_t Pbit::popcount() const {
  return std::visit([](const auto& v) { return v.popcount(); }, v_);
}

bool Pbit::any() const {
  return std::visit([](const auto& v) { return v.any(); }, v_);
}

bool Pbit::all() const {
  return std::visit([](const auto& v) { return v.all(); }, v_);
}

bool Pbit::operator==(const Pbit& o) const {
  if (v_.index() != o.v_.index()) return false;
  if (const auto* a = std::get_if<Aob>(&v_)) return *a == std::get<Aob>(o.v_);
  return std::get<Re>(v_) == std::get<Re>(o.v_);
}

Aob Pbit::to_aob() const {
  if (const auto* a = std::get_if<Aob>(&v_)) return *a;
  return std::get<Re>(v_).to_aob();
}

std::size_t Pbit::storage_bytes() const {
  if (const auto* a = std::get_if<Aob>(&v_)) {
    return a->word_count() * sizeof(std::uint64_t);
  }
  return std::get<Re>(v_).compressed_bytes();
}

}  // namespace pbp
