#include "pbp/re.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "pbp/hadamard.hpp"

namespace pbp {
namespace {

std::uint64_t pack_memo_key(BitOp op, ChunkPool::SymbolId a,
                            ChunkPool::SymbolId b) {
  // Symbols are pool indices packed 28+28+4 bits into 60.  This is lossless
  // ONLY because ChunkPool::intern refuses to mint a symbol >= kMaxSymbols:
  // without that guard, symbol 2^28 would alias symbol 0 and the memo would
  // silently return chunks computed from the wrong operands.
  static_assert(ChunkPool::kMaxSymbols <= (std::uint64_t{1} << 28),
                "pack_memo_key packs SymbolIds into 28 bits; the intern guard "
                "must not admit ids that need more");
  return (static_cast<std::uint64_t>(op) << 56) |
         (static_cast<std::uint64_t>(a) << 28) | b;
}

std::uint64_t apply_op_word(BitOp op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case BitOp::And:
      return a & b;
    case BitOp::Or:
      return a | b;
    case BitOp::Xor:
      return a ^ b;
    case BitOp::AndNot:
      return a & ~b;
  }
  return 0;
}

}  // namespace

ChunkPool::ChunkPool(unsigned chunk_ways, std::size_t max_symbols)
    : chunk_ways_(chunk_ways), max_symbols_(std::min(max_symbols, kMaxSymbols)) {
  if (chunk_ways > kMaxAobWays) {
    throw std::invalid_argument("ChunkPool: chunk_ways too large");
  }
  if (max_symbols_ < 2) {
    throw std::invalid_argument("ChunkPool: max_symbols must admit 0 and 1");
  }
  zero_ = intern_impl(Aob::zeros(chunk_ways));
  one_ = intern_impl(Aob::ones(chunk_ways));
  words_per_chunk_ = chunks_[zero_].word_count();
}

const Aob& ChunkPool::chunk(SymbolId id) const {
  // The deque's block map may be growing under a concurrent intern; take
  // the lock for the index walk.  The returned reference stays valid and
  // immutable afterwards (stable-reference deque, shared pools are ECC-off).
  const auto lock = maybe_lock();
  return chunks_[id];
}

std::size_t ChunkPool::size() const {
  const auto lock = maybe_lock();
  return chunks_.size();
}

std::uint64_t ChunkPool::memo_hits() const {
  const auto lock = maybe_lock();
  return memo_hits_;
}

std::uint64_t ChunkPool::memo_misses() const {
  const auto lock = maybe_lock();
  return memo_misses_;
}

ChunkPool::SymbolId ChunkPool::intern(const Aob& chunk) {
  const auto lock = maybe_lock();
  return intern_impl(chunk);
}

ChunkPool::SymbolId ChunkPool::intern_impl(const Aob& chunk) {
  if (chunk.ways() != chunk_ways_) {
    throw std::invalid_argument("ChunkPool: wrong chunk size");
  }
  const std::uint64_t h = chunk.hash();
  auto [lo, hi] = by_hash_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (chunks_[it->second] == chunk) return it->second;
  }
  if (chunks_.size() >= max_symbols_) {
    // See pack_memo_key: a 29-bit SymbolId would alias memo keys and make
    // apply() return wrong chunks, so refuse loudly instead.
    throw std::length_error("ChunkPool: symbol space exhausted");
  }
  const SymbolId id = static_cast<SymbolId>(chunks_.size());
  chunks_.push_back(chunk);
  pops_.push_back(std::numeric_limits<std::size_t>::max());
  by_hash_.emplace(h, id);
  if (ecc_ != EccMode::kOff) {
    check_.resize(chunks_.size() * words_per_chunk_);
    verified_at_.resize(chunks_.size(), 0);
    encode_symbol(id);  // freshly computed chunk: encoded and stamped
  }
  return id;
}

void ChunkPool::set_max_symbols(std::size_t n) {
  if (n < 2) {
    throw std::invalid_argument("ChunkPool: max_symbols must admit 0 and 1");
  }
  const auto lock = maybe_lock();
  max_symbols_ = std::min(n, kMaxSymbols);
}

ChunkPool::SymbolId ChunkPool::hadamard_symbol(unsigned k) {
  if (k >= chunk_ways_) {
    throw std::invalid_argument("ChunkPool: hadamard_symbol k >= chunk_ways");
  }
  const Aob h = hadamard_generate(chunk_ways_, k);
  const auto lock = maybe_lock();
  return intern_impl(h);
}

ChunkPool::SymbolId ChunkPool::apply(BitOp op, SymbolId a, SymbolId b) {
  const auto lock = maybe_lock();
  return apply_impl(op, a, b);
}

ChunkPool::SymbolId ChunkPool::apply_impl(BitOp op, SymbolId a, SymbolId b) {
  // Trivial identities avoid touching chunk data at all.
  switch (op) {
    case BitOp::And:
      if (a == zero_ || b == zero_) return zero_;
      if (a == one_) return b;
      if (b == one_) return a;
      if (a == b) return a;
      break;
    case BitOp::Or:
      if (a == one_ || b == one_) return one_;
      if (a == zero_) return b;
      if (b == zero_) return a;
      if (a == b) return a;
      break;
    case BitOp::Xor:
      if (a == b) return zero_;
      if (a == zero_) return b;
      if (b == zero_) return a;
      break;
    case BitOp::AndNot:
      if (a == zero_ || b == one_) return zero_;
      if (b == zero_) return a;
      if (a == b) return zero_;
      break;
  }
  // Commutative ops: canonicalize operand order to double memo hit rate.
  if (op != BitOp::AndNot && a > b) std::swap(a, b);
  const std::uint64_t key = pack_memo_key(op, a, b);
  if (auto it = memo_.find(key); it != memo_.end()) {
    ++memo_hits_;
    return it->second;
  }
  ++memo_misses_;
  Aob r = chunks_[a];
  auto rw = r.words_mut();
  const auto bw = chunks_[b].words();
  for (std::size_t i = 0; i < rw.size(); ++i) {
    rw[i] = apply_op_word(op, rw[i], bw[i]);
  }
  if (op == BitOp::AndNot && r.bit_count() < 64) {
    // AndNot can set dead tail bits via ~b; re-mask.  (a & ~b with a's tail
    // zero keeps the tail zero, so this is only defensive.)
    rw[0] &= (std::uint64_t{1} << r.bit_count()) - 1;
  }
  const SymbolId rid = intern_impl(r);
  memo_.emplace(key, rid);
  return rid;
}

ChunkPool::SymbolId ChunkPool::apply_not(SymbolId a) {
  const auto lock = maybe_lock();
  return apply_not_impl(a);
}

ChunkPool::SymbolId ChunkPool::apply_not_impl(SymbolId a) {
  if (a == zero_) return one_;
  if (a == one_) return zero_;
  if (auto it = not_memo_.find(a); it != not_memo_.end()) {
    ++memo_hits_;
    return it->second;
  }
  ++memo_misses_;
  const SymbolId rid = intern_impl(~chunks_[a]);
  not_memo_.emplace(a, rid);
  not_memo_.emplace(rid, a);  // involution: cache both directions
  return rid;
}

std::size_t ChunkPool::popcount(SymbolId id) {
  const auto lock = maybe_lock();
  return popcount_impl(id);
}

std::size_t ChunkPool::popcount_impl(SymbolId id) {
  if (pops_[id] == std::numeric_limits<std::size_t>::max()) {
    pops_[id] = chunks_[id].popcount();
  }
  return pops_[id];
}

// ---------------------------------------------------------------------------
// Integrity layer.

void ChunkPool::encode_symbol(SymbolId id) {
  const auto w = chunks_[id].words();
  std::uint8_t* chk = check_.data() + std::size_t{id} * words_per_chunk_;
  secded64_encode_block(w.data(), chk, w.size());
  verified_at_[id] = ecc_now_ + 1;  // trusted full overwrite
}

void ChunkPool::set_ecc_mode(EccMode m) {
  const auto lock = maybe_lock();
  ecc_ = m;
  if (ecc_ == EccMode::kOff) {
    // Lazy sidecar: protection off stores (and pays) nothing.
    check_.clear();
    check_.shrink_to_fit();
    verified_at_.clear();
    verified_at_.shrink_to_fit();
    return;
  }
  check_.resize(chunks_.size() * words_per_chunk_);
  verified_at_.assign(chunks_.size(), 0);
  for (SymbolId id = 0; id < chunks_.size(); ++id) encode_symbol(id);
}

void ChunkPool::verify_symbol(SymbolId id) {
  if (ecc_ == EccMode::kOff) return;
  const auto lock = maybe_lock();
  if (ecc_epoch_fresh(ecc_now_, verified_at_[id], ecc_epoch_)) {
    ++pending_.elided;  // verified within the current epoch
    return;
  }
  const auto w = chunks_[id].words_mut();
  std::uint8_t* chk = check_.data() + std::size_t{id} * words_per_chunk_;
  const std::uint64_t corrected_before = pending_.corrected;
  const EccCheck r =
      secded64_check_block(ecc_, w.data(), chk, w.size(), pending_);
  if (pending_.corrected != corrected_before) {
    // The repair restores the canonical bits, so the hash index stays
    // valid; only a popcount cached while corrupted could be stale.
    pops_[id] = std::numeric_limits<std::size_t>::max();
  }
  if (r == EccCheck::kUncorrectable) {
    throw CorruptionError(
        ecc_ == EccMode::kDetect
            ? "ChunkPool: upset detected in symbol " + std::to_string(id)
            : "ChunkPool: uncorrectable upset in symbol " +
                  std::to_string(id));
  }
  verified_at_[id] = ecc_now_ + 1;
}

EccSweep ChunkPool::scrub_ecc() {
  EccSweep sweep;
  if (ecc_ == EccMode::kOff) return sweep;
  const auto lock = maybe_lock();
  for (SymbolId id = 0; id < chunks_.size(); ++id) {
    // Ground truth: a scrub ignores the epoch stamps and sweeps everything,
    // then re-stamps what it verified clean (or repaired).
    const auto w = chunks_[id].words_mut();
    std::uint8_t* chk = check_.data() + std::size_t{id} * words_per_chunk_;
    EccSweep sym;
    const EccCheck r =
        secded64_check_block(ecc_, w.data(), chk, w.size(), sym);
    if (sym.corrected != 0) {
      pops_[id] = std::numeric_limits<std::size_t>::max();
    }
    if (r != EccCheck::kUncorrectable) verified_at_[id] = ecc_now_ + 1;
    sweep += sym;
  }
  return sweep;
}

void ChunkPool::upset(SymbolId id, std::size_t bit) {
  const auto lock = maybe_lock();
  if (id >= chunks_.size()) return;
  const auto w = chunks_[id].words_mut();
  const std::size_t word = (bit / 64) % w.size();
  w[word] ^= std::uint64_t{1} << (bit % 64);
  // The cached count must observe the flipped array, exactly as a reader
  // of the raw storage would.
  pops_[id] = std::numeric_limits<std::size_t>::max();
}

EccSweep ChunkPool::take_ecc_counts() {
  const auto lock = maybe_lock();
  const EccSweep out = pending_;
  pending_ = EccSweep{};
  return out;
}

std::size_t ChunkPool::ecc_bytes() const {
  const auto lock = maybe_lock();
  return check_.size();
}

// ---------------------------------------------------------------------------
// ShardedChunkPool.

ShardedChunkPool::ShardedChunkPool(unsigned stripes, unsigned chunk_ways)
    : chunk_ways_(chunk_ways) {
  if (stripes == 0) {
    throw std::invalid_argument("ShardedChunkPool: need at least one stripe");
  }
  pools_.reserve(stripes);
  for (unsigned i = 0; i < stripes; ++i) {
    auto p = std::make_shared<ChunkPool>(chunk_ways);
    p->enable_concurrent_use();
    pools_.push_back(std::move(p));
  }
}

const std::shared_ptr<ChunkPool>& ShardedChunkPool::stripe(
    std::uint64_t key) const {
  // splitmix64 finalizer: job ids are sequential, so spread them before
  // reducing modulo the stripe count.
  key += 0x9e3779b97f4a7c15ull;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
  key ^= key >> 31;
  return pools_[key % pools_.size()];
}

// ---------------------------------------------------------------------------

Re::Re(std::shared_ptr<ChunkPool> pool, unsigned ways)
    : pool_(std::move(pool)), ways_(ways) {
  if (!pool_) throw std::invalid_argument("Re: null pool");
  if (ways < pool_->chunk_ways()) {
    throw std::invalid_argument("Re: ways below chunk_ways");
  }
  if (ways >= 64) throw std::invalid_argument("Re: ways out of range");
  runs_.push_back({pool_->zero_symbol(), chunks_total()});
}

Re Re::zeros(std::shared_ptr<ChunkPool> pool, unsigned ways) {
  return Re(std::move(pool), ways);
}

Re Re::ones(std::shared_ptr<ChunkPool> pool, unsigned ways) {
  Re r(std::move(pool), ways);
  r.runs_[0].sym = r.pool_->one_symbol();
  return r;
}

Re Re::hadamard(std::shared_ptr<ChunkPool> pool, unsigned ways, unsigned k) {
  Re r(std::move(pool), ways);
  const unsigned cw = r.pool_->chunk_ways();
  if (k >= ways) return r;  // all zeros, matching hadamard_generate
  if (k < cw) {
    // The pattern repeats entirely within each chunk: one run of one symbol.
    r.runs_[0].sym = r.pool_->hadamard_symbol(k);
    return r;
  }
  // Alternating blocks of 2^(k-cw) all-zero / all-one chunks.
  const std::uint64_t block = std::uint64_t{1} << (k - cw);
  const std::uint64_t total = r.chunks_total();
  r.runs_.clear();
  for (std::uint64_t done = 0; done < total; done += 2 * block) {
    r.runs_.push_back({r.pool_->zero_symbol(), block});
    r.runs_.push_back({r.pool_->one_symbol(), block});
  }
  return r;
}

Re Re::from_aob(std::shared_ptr<ChunkPool> pool, const Aob& a) {
  Re r(pool, a.ways());
  const unsigned cw = pool->chunk_ways();
  const std::size_t cbits = std::size_t{1} << cw;
  std::vector<Run> runs;
  Aob chunk(cw);
  for (std::size_t c = 0; c < r.chunks_total(); ++c) {
    for (std::size_t b = 0; b < cbits; ++b) chunk.set(b, a.get(c * cbits + b));
    r.push_run(runs, pool->intern(chunk), 1);
  }
  r.runs_ = std::move(runs);
  return r;
}

Re Re::from_runs(
    std::shared_ptr<ChunkPool> pool, unsigned ways,
    const std::vector<std::pair<ChunkPool::SymbolId, std::uint64_t>>& runs) {
  Re r(std::move(pool), ways);
  std::vector<Run> out;
  out.reserve(runs.size());
  std::uint64_t total = 0;
  for (const auto& [sym, count] : runs) {
    if (sym >= r.pool_->size()) {
      throw std::invalid_argument("Re::from_runs: unknown symbol");
    }
    total += count;
    r.push_run(out, sym, count);
  }
  if (total != r.chunks_total()) {
    throw std::invalid_argument("Re::from_runs: run counts do not cover 2^E");
  }
  r.runs_ = std::move(out);
  return r;
}

std::vector<std::pair<ChunkPool::SymbolId, std::uint64_t>> Re::runs() const {
  std::vector<std::pair<ChunkPool::SymbolId, std::uint64_t>> out;
  out.reserve(runs_.size());
  for (const Run& run : runs_) out.emplace_back(run.sym, run.count);
  return out;
}

Aob Re::to_aob() const {
  Aob a(ways_);
  const std::size_t cbits = pool_->chunk_bits();
  std::size_t base = 0;
  for (const Run& run : runs_) {
    for (std::uint64_t i = 0; i < run.count; ++i) {
      const Aob& c = pool_->chunk(run.sym);
      for (std::size_t b = 0; b < cbits; ++b) {
        if (c.get(b)) a.set(base + b, true);
      }
      base += cbits;
    }
  }
  return a;
}

void Re::push_run(std::vector<Run>& out, ChunkPool::SymbolId sym,
                  std::uint64_t count) const {
  if (count == 0) return;
  if (!out.empty() && out.back().sym == sym) {
    out.back().count += count;
  } else {
    out.push_back({sym, count});
  }
}

void Re::check_compatible(const Re& o) const {
  if (pool_ != o.pool_) throw std::invalid_argument("Re: different pools");
  if (ways_ != o.ways_) throw std::invalid_argument("Re: different ways");
}

bool Re::get(std::size_t ch) const {
  ch &= bit_count() - 1;
  const std::size_t cbits = pool_->chunk_bits();
  std::uint64_t chunk_index = ch / cbits;
  for (const Run& run : runs_) {
    if (chunk_index < run.count) return pool_->chunk(run.sym).get(ch % cbits);
    chunk_index -= run.count;
  }
  return false;  // unreachable for well-formed runs
}

void Re::set(std::size_t ch, bool v) {
  ch &= bit_count() - 1;
  const std::size_t cbits = pool_->chunk_bits();
  const std::uint64_t target = ch / cbits;
  std::vector<Run> out;
  out.reserve(runs_.size() + 2);
  std::uint64_t base = 0;
  for (const Run& run : runs_) {
    if (target >= base && target < base + run.count) {
      const std::uint64_t before = target - base;
      Aob chunk = pool_->chunk(run.sym);
      chunk.set(ch % cbits, v);
      push_run(out, run.sym, before);
      push_run(out, pool_->intern(chunk), 1);
      push_run(out, run.sym, run.count - before - 1);
    } else {
      push_run(out, run.sym, run.count);
    }
    base += run.count;
  }
  runs_ = std::move(out);
}

void Re::apply(BitOp op, const Re& o) {
  check_compatible(o);
  std::vector<Run> out;
  out.reserve(runs_.size() + o.runs_.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  std::uint64_t ra = runs_.empty() ? 0 : runs_[0].count;
  std::uint64_t rb = o.runs_.empty() ? 0 : o.runs_[0].count;
  // Lockstep run walk: each output run covers min(remaining-a, remaining-b)
  // chunks, and the chunk-level op is memoized in the pool — so total work is
  // O(run pairs), not O(2^E).
  while (ia < runs_.size() && ib < o.runs_.size()) {
    const std::uint64_t n = ra < rb ? ra : rb;
    push_run(out, pool_->apply(op, runs_[ia].sym, o.runs_[ib].sym), n);
    ra -= n;
    rb -= n;
    if (ra == 0 && ++ia < runs_.size()) ra = runs_[ia].count;
    if (rb == 0 && ++ib < o.runs_.size()) rb = o.runs_[ib].count;
  }
  runs_ = std::move(out);
}

void Re::invert() {
  for (Run& run : runs_) run.sym = pool_->apply_not(run.sym);
  // Adjacent runs can now merge (e.g. H(k) and ~H(k) share structure).
  std::vector<Run> out;
  out.reserve(runs_.size());
  for (const Run& run : runs_) push_run(out, run.sym, run.count);
  runs_ = std::move(out);
}

void Re::cswap(Re& a, Re& b, const Re& c) {
  a.check_compatible(b);
  a.check_compatible(c);
  // a' = (a & ~c) | (b & c);  b' = (b & ~c) | (a & c) — four symbolic ops.
  Re a_keep = a;
  a_keep.apply(BitOp::AndNot, c);
  Re a_take = b;
  a_take.apply(BitOp::And, c);
  Re b_keep = b;
  b_keep.apply(BitOp::AndNot, c);
  Re b_take = a;
  b_take.apply(BitOp::And, c);
  a = std::move(a_keep);
  a.apply(BitOp::Or, a_take);
  b = std::move(b_keep);
  b.apply(BitOp::Or, b_take);
}

void Re::swap_values(Re& a, Re& b) noexcept {
  std::swap(a.pool_, b.pool_);
  std::swap(a.ways_, b.ways_);
  a.runs_.swap(b.runs_);
}

std::size_t Re::popcount() const {
  std::size_t n = 0;
  for (const Run& run : runs_) n += run.count * pool_->popcount(run.sym);
  return n;
}

std::size_t Re::popcount_after(std::size_t ch) const {
  ch &= bit_count() - 1;
  const std::size_t start = ch + 1;
  if (start >= bit_count()) return 0;
  const std::size_t cbits = pool_->chunk_bits();
  const std::uint64_t first_full_chunk = (start + cbits - 1) / cbits;
  std::size_t n = 0;
  // Partial leading chunk, if `start` falls mid-chunk.
  if (start % cbits != 0) {
    const std::uint64_t ci = start / cbits;
    std::uint64_t base = 0;
    for (const Run& run : runs_) {
      if (ci < base + run.count) {
        // popcount_after takes the *previous* channel; start%cbits > 0 here.
        n += pool_->chunk(run.sym).popcount_after(start % cbits - 1);
        break;
      }
      base += run.count;
    }
  }
  // Whole chunks from first_full_chunk onward.
  std::uint64_t base = 0;
  for (const Run& run : runs_) {
    const std::uint64_t lo = base > first_full_chunk ? base : first_full_chunk;
    const std::uint64_t hi = base + run.count;
    if (hi > lo) n += (hi - lo) * pool_->popcount(run.sym);
    base = hi;
  }
  return n;
}

std::optional<std::size_t> Re::next_one(std::size_t ch) const {
  ch &= bit_count() - 1;
  const std::size_t start = ch + 1;
  if (start >= bit_count()) return std::nullopt;
  const std::size_t cbits = pool_->chunk_bits();
  std::uint64_t base = 0;  // in chunks
  for (const Run& run : runs_) {
    const std::uint64_t run_end = base + run.count;
    const std::size_t run_first_bit = base * cbits;
    const std::size_t run_last_bit = run_end * cbits;  // exclusive
    if (run_last_bit > start && pool_->popcount(run.sym) > 0) {
      // The search may begin mid-run; examine at most two chunk positions
      // symbolically (the partial first chunk, then the run's repeating
      // chunk), never the full run.
      std::size_t from = start > run_first_bit ? start : run_first_bit;
      const std::uint64_t ci = from / cbits;
      const std::size_t off = from % cbits;
      const Aob& sym = pool_->chunk(run.sym);
      if (off != 0) {
        if (auto p = sym.next_one(off - 1)) return ci * cbits + *p;
        if (ci + 1 >= run_end) {
          base = run_end;
          continue;  // partial chunk exhausted this run
        }
        from = (ci + 1) * cbits;
      }
      // A full repeat of the chunk starts at `from`; its first 1 is the
      // chunk's first 1 (bit 0 handled via get + next_one).
      if (sym.get(0)) return from;
      if (auto p = sym.next_one(0)) return from + *p;
    }
    base = run_end;
  }
  return std::nullopt;
}

bool Re::any() const {
  for (const Run& run : runs_) {
    if (run.sym != pool_->zero_symbol() && pool_->popcount(run.sym) > 0) {
      return true;
    }
  }
  return false;
}

bool Re::all() const {
  const std::size_t cbits = pool_->chunk_bits();
  for (const Run& run : runs_) {
    if (pool_->popcount(run.sym) != cbits) return false;
  }
  return true;
}

bool Re::operator==(const Re& o) const {
  if (pool_ != o.pool_ || ways_ != o.ways_) return false;
  // Runs are kept merge-canonical by push_run, so direct comparison works.
  if (runs_.size() != o.runs_.size()) return false;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].sym != o.runs_[i].sym || runs_[i].count != o.runs_[i].count) {
      return false;
    }
  }
  return true;
}

std::string Re::to_string(std::size_t max_bits) const {
  const std::size_t n = bit_count();
  const std::size_t shown = n < max_bits ? n : max_bits;
  std::string s;
  s.reserve(shown + 3);
  for (std::size_t e = 0; e < shown; ++e) s.push_back(get(e) ? '1' : '0');
  if (shown < n) s += "...";
  return s;
}

std::size_t Re::compressed_bytes() const {
  return runs_.size() * sizeof(Run);
}

}  // namespace pbp
