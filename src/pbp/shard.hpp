// shard.hpp — persistent worker pool for sharding one wide AoB register.
//
// A 2^E-bit register at ways 24 is 16 MiB of packed words; a single fused
// verify–compute–encode sweep over it is long enough to amortize handing
// word sub-ranges to a few persistent threads.  The pool is deliberately
// minimal: run(n, align, fn) splits [0, n) into one contiguous range per
// shard (aligned down to `align`-word multiples so SECDED check blocks and
// vector blocks never straddle shards), executes fn(begin, end, shard) on
// the workers plus the calling thread, and returns when every shard is done.
//
// Determinism contract: shard ranges are a pure function of (n, align,
// thread count), ranges are disjoint, and the dense kernels that run under
// the pool are elementwise over disjoint words — so the sharded result is
// bit-identical to the single-threaded one regardless of scheduling.
// Reductions (popcount, sweep tallies) write per-shard slots and are
// combined in shard order by the caller.
//
// Exceptions thrown by fn on a worker are captured and rethrown on the
// calling thread after all shards finish (first shard index wins), so a
// CorruptionError raised mid-sweep propagates exactly like the scalar path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pbp {

/// Deterministic word range of `shard` out of `threads` over [0, n):
/// the first n/align chunks are dealt as evenly as possible, earlier shards
/// taking the remainder.  Returns {begin, end} (end == begin for an empty
/// shard).
std::pair<std::size_t, std::size_t> shard_range(std::size_t n,
                                                std::size_t align,
                                                unsigned shard,
                                                unsigned threads);

class ShardPool {
 public:
  /// Spawns threads-1 workers; the caller always executes shard 0 itself.
  explicit ShardPool(unsigned threads);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  unsigned threads() const { return threads_; }

  /// Runs fn(begin, end, shard) once per shard over a partition of [0, n)
  /// aligned to `align`-word multiples.  Blocks until every shard returns;
  /// rethrows the lowest-shard exception if any shard threw.
  void run(std::size_t n, std::size_t align,
           const std::function<void(std::size_t, std::size_t, unsigned)>& fn);

 private:
  void worker_main(unsigned shard);

  unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  // bumped per run(); workers wait on it
  unsigned remaining_ = 0;        // worker shards not yet finished
  bool stop_ = false;

  // Per-run job, valid while remaining_ > 0.
  std::size_t job_n_ = 0;
  std::size_t job_align_ = 1;
  const std::function<void(std::size_t, std::size_t, unsigned)>* job_fn_ =
      nullptr;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace pbp
