#include "pbp/ecc.hpp"

#include <bit>

#include "pbp/simd.hpp"

namespace pbp {

const char* ecc_mode_name(EccMode m) {
  switch (m) {
    case EccMode::kOff:
      return "off";
    case EccMode::kDetect:
      return "detect";
    case EccMode::kCorrect:
      return "correct";
  }
  return "?";
}

EccMode parse_ecc_mode(const std::string& s) {
  if (s == "off") return EccMode::kOff;
  if (s == "detect") return EccMode::kDetect;
  if (s == "correct") return EccMode::kCorrect;
  throw std::invalid_argument("bad ecc mode '" + s +
                              "' (want off|detect|correct)");
}

namespace {

/// Build-time tables for one extended-Hamming code.  Data bit d of the
/// payload occupies the d-th non-power-of-two codeword position >= 3;
/// parity bit i covers every position with bit i set.
template <typename P, int M, int MaxPos>
struct Tables {
  static constexpr int kDataBits = static_cast<int>(sizeof(P)) * 8;
  P mask[M] = {};                 // payload mask per Hamming parity bit
  int data_of_pos[MaxPos + 1] = {};  // codeword position -> data bit, or -1

  constexpr Tables() {
    for (int pos = 0; pos <= MaxPos; ++pos) data_of_pos[pos] = -1;
    int d = 0;
    for (int pos = 3; pos <= MaxPos && d < kDataBits; ++pos) {
      if ((pos & (pos - 1)) == 0) continue;  // parity position
      data_of_pos[pos] = d;
      for (int i = 0; i < M; ++i) {
        if ((pos >> i) & 1) mask[i] |= P{1} << d;
      }
      ++d;
    }
  }
};

// 64 data bits need 64 non-power positions: 1..71 holds 7 powers, so
// MaxPos = 71 and m = 7 (syndrome bits 0..6 address positions <= 71).
constexpr Tables<std::uint64_t, 7, 71> k64;
// 16 data bits: positions 1..21 hold 5 powers, MaxPos = 21, m = 5.
constexpr Tables<std::uint16_t, 5, 21> k16;

template <typename P, int M, int MaxPos>
std::uint8_t encode(const Tables<P, M, MaxPos>& t, P payload) {
  std::uint8_t h = 0;
  for (int i = 0; i < M; ++i) {
    // static_cast<P>: uint16 & uint16 promotes to (signed) int, which
    // std::popcount rejects.
    h |= static_cast<std::uint8_t>(
        (std::popcount(static_cast<P>(payload & t.mask[i])) & 1) << i);
  }
  const int overall =
      (std::popcount(payload) + std::popcount(static_cast<unsigned>(h))) & 1;
  return static_cast<std::uint8_t>(h | (overall << M));
}

template <typename P, int M, int MaxPos>
EccCheck check_and_correct(const Tables<P, M, MaxPos>& t, P& payload,
                           std::uint8_t& check) {
  constexpr std::uint8_t kHammingMask = (1u << M) - 1;
  const std::uint8_t stored_h = check & kHammingMask;
  const std::uint8_t stored_o = (check >> M) & 1;
  std::uint8_t computed_h = 0;
  for (int i = 0; i < M; ++i) {
    computed_h |= static_cast<std::uint8_t>(
        (std::popcount(static_cast<P>(payload & t.mask[i])) & 1) << i);
  }
  const std::uint8_t syndrome = stored_h ^ computed_h;
  // Overall parity across every stored bit: payload, stored Hamming
  // bits, and the stored overall bit.  Even (0) iff an even number of
  // stored bits flipped.
  const int overall = (std::popcount(payload) +
                       std::popcount(static_cast<unsigned>(stored_h)) +
                       stored_o) &
                      1;
  if (syndrome == 0 && overall == 0) return EccCheck::kClean;
  if (overall == 0) return EccCheck::kUncorrectable;  // double-bit upset
  // Odd number of flips: assume one, addressed by the syndrome.
  if (syndrome != 0 && (syndrome & (syndrome - 1)) != 0) {
    // Non-power syndrome: a data position.
    const int d = syndrome <= MaxPos ? t.data_of_pos[syndrome] : -1;
    if (d < 0) return EccCheck::kUncorrectable;  // invalid position
    payload ^= P{1} << d;
  }
  // Power-of-two syndrome (a Hamming check bit flipped) or zero syndrome
  // (the overall bit flipped) need no payload repair; re-encoding the
  // check byte canonically fixes every single-bit case at once.
  check = encode(t, payload);
  return EccCheck::kCorrected;
}

}  // namespace

std::uint8_t secded64_encode(std::uint64_t payload) {
  return encode(k64, payload);
}

std::uint8_t secded16_encode(std::uint16_t payload) {
  return encode(k16, payload);
}

EccCheck secded64_check(std::uint64_t& payload, std::uint8_t& check) {
  return check_and_correct(k64, payload, check);
}

EccCheck secded16_check(std::uint16_t& payload, std::uint8_t& check) {
  return check_and_correct(k16, payload, check);
}

bool secded64_clean(std::uint64_t payload, std::uint8_t check) {
  return check == encode(k64, payload);
}

bool secded16_clean(std::uint16_t payload, std::uint8_t check) {
  return check == encode(k16, payload);
}

void secded64_encode_block(const std::uint64_t* words, std::uint8_t* checks,
                           std::size_t n) {
  // Tier-dispatched: the AVX-512 path evaluates the GF(2) parity masks with
  // vector popcounts, the scalar path skips table lookups for zero words.
  simd::secded64_encode(words, checks, n);
}

void secded16_encode_block(const std::uint16_t* words, std::uint8_t* checks,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    checks[i] = words[i] == 0 ? 0 : secded16_encode_fast(words[i]);
  }
}

namespace {

// Shared body of the two check_block kernels.  Clean words (the universal
// case) cost one table-driven re-encode and a compare; only a mismatch pays
// for the scalar reference decode.  A stored check byte is canonical by
// construction (every write path encodes), so probe == stored iff no bit of
// payload or check has flipped.
template <typename P, typename EncodeFast, typename CheckScalar>
EccCheck check_block(EccMode mode, P* words, std::uint8_t* checks,
                     std::size_t n, EccSweep& sweep, EncodeFast encode_fast,
                     CheckScalar check_scalar) {
  sweep.words += n;
  EccCheck worst = EccCheck::kClean;
  for (std::size_t base = 0; base < n; base += 64) {
    const std::size_t end = base + 64 < n ? base + 64 : n;
    // All-zero payload + check is clean (encode(0) == 0), and zeroed state
    // dominates whole-file sweeps: OR-fold each 64-word chunk first — a
    // branchless, vectorizable pass — and probe word-by-word only in
    // chunks that hold any set bit.
    std::uint64_t fold = 0;
    for (std::size_t i = base; i < end; ++i) {
      fold |= static_cast<std::uint64_t>(words[i]) | checks[i];
    }
    if (fold == 0) continue;
    for (std::size_t i = base; i < end; ++i) {
      if (encode_fast(words[i]) == checks[i]) continue;
      if (mode == EccMode::kDetect) {
        // Detect-only hardware has no corrector: any mismatch is an
        // uncorrectable corruption, and nothing is repaired.
        ++sweep.uncorrectable;
        worst = EccCheck::kUncorrectable;
        continue;
      }
      switch (check_scalar(words[i], checks[i])) {
        case EccCheck::kClean:  // unreachable: the probe already mismatched
          break;
        case EccCheck::kCorrected:
          ++sweep.corrected;
          if (worst == EccCheck::kClean) worst = EccCheck::kCorrected;
          break;
        case EccCheck::kUncorrectable:
          ++sweep.uncorrectable;
          worst = EccCheck::kUncorrectable;
          break;
      }
    }
  }
  return worst;
}

}  // namespace

EccCheck secded64_check_block(EccMode mode, std::uint64_t* words,
                              std::uint8_t* checks, std::size_t n,
                              EccSweep& sweep) {
  if (mode == EccMode::kOff) return EccCheck::kClean;
  // The 64-bit path probes whole 64-word chunks through the tier-dispatched
  // mismatch mask (vector re-encode + compare on AVX-512, OR-fold zero-skip
  // probe on scalar) and only walks the — almost always empty — set bits.
  sweep.words += n;
  EccCheck worst = EccCheck::kClean;
  for (std::size_t base = 0; base < n; base += 64) {
    const std::size_t len = base + 64 < n ? 64 : n - base;
    std::uint64_t mm = simd::secded64_mismatch_mask(words + base,
                                                    checks + base, len);
    while (mm != 0) {
      const std::size_t i =
          base + static_cast<std::size_t>(std::countr_zero(mm));
      mm &= mm - 1;
      if (mode == EccMode::kDetect) {
        // Detect-only hardware has no corrector: any mismatch is an
        // uncorrectable corruption, and nothing is repaired.
        ++sweep.uncorrectable;
        worst = EccCheck::kUncorrectable;
        continue;
      }
      switch (secded64_check(words[i], checks[i])) {
        case EccCheck::kClean:  // unreachable: the probe already mismatched
          break;
        case EccCheck::kCorrected:
          ++sweep.corrected;
          if (worst == EccCheck::kClean) worst = EccCheck::kCorrected;
          break;
        case EccCheck::kUncorrectable:
          ++sweep.uncorrectable;
          worst = EccCheck::kUncorrectable;
          break;
      }
    }
  }
  return worst;
}

EccCheck secded16_check_block(EccMode mode, std::uint16_t* words,
                              std::uint8_t* checks, std::size_t n,
                              EccSweep& sweep) {
  if (mode == EccMode::kOff) return EccCheck::kClean;
  return check_block(
      mode, words, checks, n, sweep,
      [](std::uint16_t w) { return secded16_encode_fast(w); },
      [](std::uint16_t& w, std::uint8_t& c) { return secded16_check(w, c); });
}

}  // namespace pbp
