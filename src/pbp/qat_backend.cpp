#include "pbp/qat_backend.hpp"

#include <algorithm>
#include <stdexcept>

#include "pbp/hadamard.hpp"

namespace pbp {

QatBackend::QatBackend(unsigned ways, unsigned num_regs)
    : ways_(ways), num_regs_(num_regs) {
  if (num_regs == 0) {
    throw std::invalid_argument("QatBackend: no registers");
  }
}

// ---------------------------------------------------------------------------
// DenseQatBackend — the historical std::vector<Aob> register file.

DenseQatBackend::DenseQatBackend(unsigned ways, unsigned num_regs)
    : QatBackend(ways, num_regs) {
  if (ways == 0 || ways > kMaxAobWays) {
    throw std::invalid_argument("DenseQatBackend: ways out of range");
  }
  regs_.assign(num_regs, Aob::zeros(ways));
}

void DenseQatBackend::zero(unsigned a) { regs_[idx(a)] = Aob::zeros(ways_); }

void DenseQatBackend::one(unsigned a) { regs_[idx(a)] = Aob::ones(ways_); }

void DenseQatBackend::had(unsigned a, unsigned k) {
  regs_[idx(a)] = hadamard_generate(ways_, k);
}

void DenseQatBackend::not_(unsigned a) { regs_[idx(a)].invert(); }

void DenseQatBackend::cnot(unsigned a, unsigned b) {
  regs_[idx(a)] ^= regs_[idx(b)];
}

void DenseQatBackend::ccnot(unsigned a, unsigned b, unsigned c) {
  regs_[idx(a)] ^= regs_[idx(b)] & regs_[idx(c)];
}

void DenseQatBackend::swap(unsigned a, unsigned b) {
  if (idx(a) == idx(b)) return;
  Aob::swap_values(regs_[idx(a)], regs_[idx(b)]);
}

void DenseQatBackend::cswap(unsigned a, unsigned b, unsigned c) {
  if (idx(a) == idx(b)) return;
  // Aliasing with the control is well-defined: the control is read once.
  const Aob control = regs_[idx(c)];
  Aob::cswap(regs_[idx(a)], regs_[idx(b)], control);
}

void DenseQatBackend::and_(unsigned a, unsigned b, unsigned c) {
  regs_[idx(a)] = regs_[idx(b)] & regs_[idx(c)];
}

void DenseQatBackend::or_(unsigned a, unsigned b, unsigned c) {
  regs_[idx(a)] = regs_[idx(b)] | regs_[idx(c)];
}

void DenseQatBackend::xor_(unsigned a, unsigned b, unsigned c) {
  regs_[idx(a)] = regs_[idx(b)] ^ regs_[idx(c)];
}

bool DenseQatBackend::meas(unsigned a, std::size_t ch) const {
  return regs_[idx(a)].get(ch);
}

std::optional<std::size_t> DenseQatBackend::next_one(unsigned a,
                                                     std::size_t ch) const {
  return regs_[idx(a)].next_one(ch);
}

std::size_t DenseQatBackend::pop_after(unsigned a, std::size_t ch) const {
  return regs_[idx(a)].popcount_after(ch);
}

std::size_t DenseQatBackend::popcount(unsigned a) const {
  return regs_[idx(a)].popcount();
}

bool DenseQatBackend::any(unsigned a) const { return regs_[idx(a)].any(); }

bool DenseQatBackend::all(unsigned a) const { return regs_[idx(a)].all(); }

Aob DenseQatBackend::reg_aob(unsigned a) const { return regs_[idx(a)]; }

void DenseQatBackend::set_reg_aob(unsigned a, const Aob& v) {
  if (v.ways() != ways_) {
    throw std::invalid_argument("DenseQatBackend: wrong AoB size");
  }
  regs_[idx(a)] = v;
}

std::string DenseQatBackend::reg_string(unsigned a,
                                        std::size_t max_bits) const {
  return regs_[idx(a)].to_string(max_bits);
}

std::size_t DenseQatBackend::storage_bytes() const {
  return static_cast<std::size_t>(num_regs_) * (channels() / 8);
}

// ---------------------------------------------------------------------------
// ReQatBackend — copy-on-write compressed register file.

ReQatBackend::ReQatBackend(unsigned ways, unsigned num_regs,
                           unsigned chunk_ways)
    : QatBackend(ways, num_regs),
      pool_(std::make_shared<ChunkPool>(std::min(chunk_ways, ways))),
      constants_(2 + ways) {
  if (ways == 0 || ways > kMaxReWays) {
    throw std::invalid_argument("ReQatBackend: ways out of range");
  }
  regs_.assign(num_regs, constant(0));
}

std::shared_ptr<const Re> ReQatBackend::constant(unsigned which_k) {
  auto& slot = constants_[which_k];
  if (!slot) {
    if (which_k == 0) {
      slot = std::make_shared<const Re>(Re::zeros(pool_, ways_));
    } else if (which_k == 1) {
      slot = std::make_shared<const Re>(Re::ones(pool_, ways_));
    } else {
      slot = std::make_shared<const Re>(
          Re::hadamard(pool_, ways_, which_k - 2));
    }
  }
  return slot;
}

void ReQatBackend::zero(unsigned a) { regs_[idx(a)] = constant(0); }

void ReQatBackend::one(unsigned a) { regs_[idx(a)] = constant(1); }

void ReQatBackend::had(unsigned a, unsigned k) {
  if (k >= ways_) {
    // hadamard_generate yields all-zeros past the register width; match it.
    regs_[idx(a)] = constant(0);
    return;
  }
  regs_[idx(a)] = constant(2 + k);
}

void ReQatBackend::not_(unsigned a) {
  Re t = get(a);
  t.invert();
  put(a, std::move(t));
}

void ReQatBackend::cnot(unsigned a, unsigned b) {
  Re t = get(a);
  t.apply(BitOp::Xor, get(b));
  put(a, std::move(t));
}

void ReQatBackend::ccnot(unsigned a, unsigned b, unsigned c) {
  Re m = get(b);
  m.apply(BitOp::And, get(c));
  Re t = get(a);
  t.apply(BitOp::Xor, m);
  put(a, std::move(t));
}

void ReQatBackend::swap(unsigned a, unsigned b) {
  if (idx(a) == idx(b)) return;
  // The whole point of copy-on-write: a register move is a pointer move.
  regs_[idx(a)].swap(regs_[idx(b)]);
}

void ReQatBackend::cswap(unsigned a, unsigned b, unsigned c) {
  if (idx(a) == idx(b)) return;
  Re va = get(a);
  Re vb = get(b);
  Re::cswap(va, vb, get(c));
  put(a, std::move(va));
  put(b, std::move(vb));
}

void ReQatBackend::and_(unsigned a, unsigned b, unsigned c) {
  Re t = get(b);
  t.apply(BitOp::And, get(c));
  put(a, std::move(t));
}

void ReQatBackend::or_(unsigned a, unsigned b, unsigned c) {
  Re t = get(b);
  t.apply(BitOp::Or, get(c));
  put(a, std::move(t));
}

void ReQatBackend::xor_(unsigned a, unsigned b, unsigned c) {
  Re t = get(b);
  t.apply(BitOp::Xor, get(c));
  put(a, std::move(t));
}

bool ReQatBackend::meas(unsigned a, std::size_t ch) const {
  return get(a).get(ch);
}

std::optional<std::size_t> ReQatBackend::next_one(unsigned a,
                                                  std::size_t ch) const {
  return get(a).next_one(ch);
}

std::size_t ReQatBackend::pop_after(unsigned a, std::size_t ch) const {
  return get(a).popcount_after(ch);
}

std::size_t ReQatBackend::popcount(unsigned a) const {
  return get(a).popcount();
}

bool ReQatBackend::any(unsigned a) const { return get(a).any(); }

bool ReQatBackend::all(unsigned a) const { return get(a).all(); }

Aob ReQatBackend::reg_aob(unsigned a) const {
  if (ways_ > kMaxAobWays) {
    throw std::length_error(
        "ReQatBackend: register too wide to materialize densely");
  }
  return get(a).to_aob();
}

void ReQatBackend::set_reg_aob(unsigned a, const Aob& v) {
  if (v.ways() != ways_) {
    throw std::invalid_argument("ReQatBackend: wrong AoB size");
  }
  put(a, Re::from_aob(pool_, v));
}

std::string ReQatBackend::reg_string(unsigned a, std::size_t max_bits) const {
  return get(a).to_string(max_bits);
}

std::size_t ReQatBackend::storage_bytes() const {
  std::size_t n = 0;
  for (const auto& r : regs_) n += r->compressed_bytes();
  return n;
}

std::size_t ReQatBackend::total_runs() const {
  std::size_t n = 0;
  for (const auto& r : regs_) n += r->run_count();
  return n;
}

// ---------------------------------------------------------------------------

std::unique_ptr<QatBackend> make_qat_backend(Backend kind, unsigned ways,
                                             unsigned num_regs,
                                             unsigned chunk_ways) {
  switch (kind) {
    case Backend::kDense:
      return std::make_unique<DenseQatBackend>(ways, num_regs);
    case Backend::kCompressed:
      return std::make_unique<ReQatBackend>(ways, num_regs, chunk_ways);
  }
  throw std::invalid_argument("make_qat_backend: unknown backend");
}

}  // namespace pbp
