#include "pbp/qat_backend.hpp"

#include <algorithm>
#include <stdexcept>

#include "pbp/hadamard.hpp"

namespace pbp {

QatBackend::QatBackend(unsigned ways, unsigned num_regs)
    : ways_(ways), num_regs_(num_regs) {
  if (num_regs == 0) {
    throw std::invalid_argument("QatBackend: no registers");
  }
}

// ---------------------------------------------------------------------------
// DenseQatBackend — the historical std::vector<Aob> register file.

DenseQatBackend::DenseQatBackend(unsigned ways, unsigned num_regs)
    : QatBackend(ways, num_regs) {
  if (ways == 0 || ways > kMaxAobWays) {
    throw std::invalid_argument("DenseQatBackend: ways out of range");
  }
  regs_.assign(num_regs, Aob::zeros(ways));
}

void DenseQatBackend::zero(unsigned a) { regs_[idx(a)] = Aob::zeros(ways_); }

void DenseQatBackend::one(unsigned a) { regs_[idx(a)] = Aob::ones(ways_); }

void DenseQatBackend::had(unsigned a, unsigned k) {
  regs_[idx(a)] = hadamard_generate(ways_, k);
}

void DenseQatBackend::not_(unsigned a) { regs_[idx(a)].invert(); }

void DenseQatBackend::cnot(unsigned a, unsigned b) {
  regs_[idx(a)] ^= regs_[idx(b)];
}

void DenseQatBackend::ccnot(unsigned a, unsigned b, unsigned c) {
  regs_[idx(a)] ^= regs_[idx(b)] & regs_[idx(c)];
}

void DenseQatBackend::swap(unsigned a, unsigned b) {
  if (idx(a) == idx(b)) return;
  Aob::swap_values(regs_[idx(a)], regs_[idx(b)]);
}

void DenseQatBackend::cswap(unsigned a, unsigned b, unsigned c) {
  if (idx(a) == idx(b)) return;
  // Aliasing with the control is well-defined: the control is read once.
  const Aob control = regs_[idx(c)];
  Aob::cswap(regs_[idx(a)], regs_[idx(b)], control);
}

void DenseQatBackend::and_(unsigned a, unsigned b, unsigned c) {
  regs_[idx(a)] = regs_[idx(b)] & regs_[idx(c)];
}

void DenseQatBackend::or_(unsigned a, unsigned b, unsigned c) {
  regs_[idx(a)] = regs_[idx(b)] | regs_[idx(c)];
}

void DenseQatBackend::xor_(unsigned a, unsigned b, unsigned c) {
  regs_[idx(a)] = regs_[idx(b)] ^ regs_[idx(c)];
}

bool DenseQatBackend::meas(unsigned a, std::size_t ch) const {
  return regs_[idx(a)].get(ch);
}

std::optional<std::size_t> DenseQatBackend::next_one(unsigned a,
                                                     std::size_t ch) const {
  return regs_[idx(a)].next_one(ch);
}

std::size_t DenseQatBackend::pop_after(unsigned a, std::size_t ch) const {
  return regs_[idx(a)].popcount_after(ch);
}

std::size_t DenseQatBackend::popcount(unsigned a) const {
  return regs_[idx(a)].popcount();
}

bool DenseQatBackend::any(unsigned a) const { return regs_[idx(a)].any(); }

bool DenseQatBackend::all(unsigned a) const { return regs_[idx(a)].all(); }

Aob DenseQatBackend::reg_aob(unsigned a) const { return regs_[idx(a)]; }

void DenseQatBackend::set_reg_aob(unsigned a, const Aob& v) {
  if (v.ways() != ways_) {
    throw std::invalid_argument("DenseQatBackend: wrong AoB size");
  }
  regs_[idx(a)] = v;
}

void DenseQatBackend::set_channel(unsigned a, std::size_t ch, bool v) {
  regs_[idx(a)].set(ch, v);
}

std::string DenseQatBackend::reg_string(unsigned a,
                                        std::size_t max_bits) const {
  return regs_[idx(a)].to_string(max_bits);
}

std::size_t DenseQatBackend::storage_bytes() const {
  return static_cast<std::size_t>(num_regs_) * (channels() / 8);
}

namespace {

constexpr std::uint8_t kSnapshotDense = 0;
constexpr std::uint8_t kSnapshotRe = 1;

void write_aob_words(ByteWriter& w, const Aob& a) {
  for (const std::uint64_t word : a.words()) w.u64(word);
}

Aob read_aob_words(ByteReader& r, unsigned ways) {
  Aob a(ways);
  auto words = a.words_mut();
  for (auto& word : words) word = r.u64();
  return a;
}

}  // namespace

void DenseQatBackend::serialize(ByteWriter& w) const {
  w.u8(kSnapshotDense);
  w.u32(ways_);
  w.u32(num_regs_);
  for (const Aob& reg : regs_) write_aob_words(w, reg);
}

std::unique_ptr<DenseQatBackend> DenseQatBackend::deserialize(ByteReader& r) {
  const unsigned ways = r.u32();
  const unsigned num_regs = r.u32();
  auto b = std::make_unique<DenseQatBackend>(ways, num_regs);
  for (unsigned i = 0; i < num_regs; ++i) {
    b->regs_[i] = read_aob_words(r, ways);
  }
  return b;
}

// ---------------------------------------------------------------------------
// ReQatBackend — copy-on-write compressed register file.

ReQatBackend::ReQatBackend(unsigned ways, unsigned num_regs,
                           unsigned chunk_ways)
    : QatBackend(ways, num_regs),
      pool_(std::make_shared<ChunkPool>(std::min(chunk_ways, ways))),
      constants_(2 + ways) {
  if (ways == 0 || ways > kMaxReWays) {
    throw std::invalid_argument("ReQatBackend: ways out of range");
  }
  regs_.assign(num_regs, constant(0));
}

std::shared_ptr<const Re> ReQatBackend::constant(unsigned which_k) {
  auto& slot = constants_[which_k];
  if (!slot) {
    if (which_k == 0) {
      slot = std::make_shared<const Re>(Re::zeros(pool_, ways_));
    } else if (which_k == 1) {
      slot = std::make_shared<const Re>(Re::ones(pool_, ways_));
    } else {
      slot = std::make_shared<const Re>(
          Re::hadamard(pool_, ways_, which_k - 2));
    }
  }
  return slot;
}

void ReQatBackend::zero(unsigned a) { regs_[idx(a)] = constant(0); }

void ReQatBackend::one(unsigned a) { regs_[idx(a)] = constant(1); }

void ReQatBackend::had(unsigned a, unsigned k) {
  if (k >= ways_) {
    // hadamard_generate yields all-zeros past the register width; match it.
    regs_[idx(a)] = constant(0);
    return;
  }
  regs_[idx(a)] = constant(2 + k);
}

void ReQatBackend::not_(unsigned a) {
  Re t = get(a);
  t.invert();
  put(a, std::move(t));
}

void ReQatBackend::cnot(unsigned a, unsigned b) {
  Re t = get(a);
  t.apply(BitOp::Xor, get(b));
  put(a, std::move(t));
}

void ReQatBackend::ccnot(unsigned a, unsigned b, unsigned c) {
  Re m = get(b);
  m.apply(BitOp::And, get(c));
  Re t = get(a);
  t.apply(BitOp::Xor, m);
  put(a, std::move(t));
}

void ReQatBackend::swap(unsigned a, unsigned b) {
  if (idx(a) == idx(b)) return;
  // The whole point of copy-on-write: a register move is a pointer move.
  regs_[idx(a)].swap(regs_[idx(b)]);
}

void ReQatBackend::cswap(unsigned a, unsigned b, unsigned c) {
  if (idx(a) == idx(b)) return;
  Re va = get(a);
  Re vb = get(b);
  Re::cswap(va, vb, get(c));
  put(a, std::move(va));
  put(b, std::move(vb));
}

void ReQatBackend::and_(unsigned a, unsigned b, unsigned c) {
  Re t = get(b);
  t.apply(BitOp::And, get(c));
  put(a, std::move(t));
}

void ReQatBackend::or_(unsigned a, unsigned b, unsigned c) {
  Re t = get(b);
  t.apply(BitOp::Or, get(c));
  put(a, std::move(t));
}

void ReQatBackend::xor_(unsigned a, unsigned b, unsigned c) {
  Re t = get(b);
  t.apply(BitOp::Xor, get(c));
  put(a, std::move(t));
}

bool ReQatBackend::meas(unsigned a, std::size_t ch) const {
  return get(a).get(ch);
}

std::optional<std::size_t> ReQatBackend::next_one(unsigned a,
                                                  std::size_t ch) const {
  return get(a).next_one(ch);
}

std::size_t ReQatBackend::pop_after(unsigned a, std::size_t ch) const {
  return get(a).popcount_after(ch);
}

std::size_t ReQatBackend::popcount(unsigned a) const {
  return get(a).popcount();
}

bool ReQatBackend::any(unsigned a) const { return get(a).any(); }

bool ReQatBackend::all(unsigned a) const { return get(a).all(); }

Aob ReQatBackend::reg_aob(unsigned a) const {
  if (ways_ > kMaxAobWays) {
    throw std::length_error(
        "ReQatBackend: register too wide to materialize densely");
  }
  return get(a).to_aob();
}

void ReQatBackend::set_reg_aob(unsigned a, const Aob& v) {
  if (v.ways() != ways_) {
    throw std::invalid_argument("ReQatBackend: wrong AoB size");
  }
  put(a, Re::from_aob(pool_, v));
}

void ReQatBackend::set_channel(unsigned a, std::size_t ch, bool v) {
  Re t = get(a);
  t.set(ch, v);
  put(a, std::move(t));
}

std::string ReQatBackend::reg_string(unsigned a, std::size_t max_bits) const {
  return get(a).to_string(max_bits);
}

std::size_t ReQatBackend::storage_bytes() const {
  std::size_t n = 0;
  for (const auto& r : regs_) n += r->compressed_bytes();
  return n;
}

std::size_t ReQatBackend::total_runs() const {
  std::size_t n = 0;
  for (const auto& r : regs_) n += r->run_count();
  return n;
}

void ReQatBackend::serialize(ByteWriter& w) const {
  w.u8(kSnapshotRe);
  w.u32(ways_);
  w.u32(num_regs_);
  w.u32(pool_->chunk_ways());
  w.u64(pool_->max_symbols());
  // Pool symbols 0 (zeros) and 1 (ones) are implicit — every ChunkPool
  // interns them at construction in that order.
  w.u32(static_cast<std::uint32_t>(pool_->size()));
  for (ChunkPool::SymbolId id = 2; id < pool_->size(); ++id) {
    write_aob_words(w, pool_->chunk(id));
  }
  for (const auto& reg : regs_) {
    const auto runs = reg->runs();
    w.u32(static_cast<std::uint32_t>(runs.size()));
    for (const auto& [sym, count] : runs) {
      w.u32(sym);
      w.u64(count);
    }
  }
}

std::unique_ptr<ReQatBackend> ReQatBackend::deserialize(ByteReader& r) {
  const unsigned ways = r.u32();
  const unsigned num_regs = r.u32();
  const unsigned chunk_ways = r.u32();
  const std::uint64_t max_symbols = r.u64();
  auto b = std::make_unique<ReQatBackend>(ways, num_regs, chunk_ways);
  // Re-intern the chunk table in id order: hash-consing plus the absence of
  // duplicates in a serialized pool make the ids come back identical.
  const std::uint32_t n_symbols = r.u32();
  for (std::uint32_t id = 2; id < n_symbols; ++id) {
    const ChunkPool::SymbolId got =
        b->pool_->intern(read_aob_words(r, b->pool_->chunk_ways()));
    if (got != id) {
      throw std::runtime_error("ReQatBackend: snapshot pool not canonical");
    }
  }
  // Reapply the cap only after the snapshot's own symbols are back in — a
  // forced-exhaustion cap must survive restore, not block it.
  b->pool_->set_max_symbols(max_symbols);
  for (unsigned i = 0; i < num_regs; ++i) {
    const std::uint32_t n_runs = r.u32();
    std::vector<std::pair<ChunkPool::SymbolId, std::uint64_t>> runs;
    runs.reserve(n_runs);
    for (std::uint32_t j = 0; j < n_runs; ++j) {
      const ChunkPool::SymbolId sym = r.u32();
      const std::uint64_t count = r.u64();
      runs.emplace_back(sym, count);
    }
    b->regs_[i] =
        std::make_shared<const Re>(Re::from_runs(b->pool_, ways, runs));
  }
  return b;
}

// ---------------------------------------------------------------------------

std::size_t dense_backend_bytes(unsigned ways, unsigned num_regs) {
  if (ways >= 64) return SIZE_MAX;
  const std::size_t per_reg = (std::size_t{1} << ways) / 8;
  if (per_reg != 0 && num_regs > SIZE_MAX / per_reg) return SIZE_MAX;
  // Sub-byte registers (ways < 3) still occupy at least a word each.
  return num_regs * std::max<std::size_t>(per_reg, 8);
}

std::unique_ptr<QatBackend> make_qat_backend(Backend kind, unsigned ways,
                                             unsigned num_regs,
                                             unsigned chunk_ways) {
  switch (kind) {
    case Backend::kDense:
      return std::make_unique<DenseQatBackend>(ways, num_regs);
    case Backend::kCompressed:
      return std::make_unique<ReQatBackend>(ways, num_regs, chunk_ways);
  }
  throw std::invalid_argument("make_qat_backend: unknown backend");
}

std::unique_ptr<QatBackend> deserialize_qat_backend(ByteReader& r) {
  switch (r.u8()) {
    case kSnapshotDense:
      return DenseQatBackend::deserialize(r);
    case kSnapshotRe:
      return ReQatBackend::deserialize(r);
    default:
      throw std::runtime_error("deserialize_qat_backend: unknown kind byte");
  }
}

}  // namespace pbp
