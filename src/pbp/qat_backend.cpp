#include "pbp/qat_backend.hpp"

#include <algorithm>
#include <stdexcept>

#include "pbp/hadamard.hpp"
#include "pbp/simd.hpp"

namespace pbp {

QatBackend::QatBackend(unsigned ways, unsigned num_regs)
    : ways_(ways), num_regs_(num_regs) {
  if (num_regs == 0) {
    throw std::invalid_argument("QatBackend: no registers");
  }
}

// ---------------------------------------------------------------------------
// DenseQatBackend — the slab-backed register file.  Semantics are the
// historical std::vector<Aob> file's, bit for bit (the measurement family
// runs the same bitview kernels Aob runs); storage is one flat arena with a
// register->slot indirection so swap() stays O(1) and reset_state() can
// rewind to power-on without giving the allocation back.

DenseQatBackend::DenseQatBackend(unsigned ways, unsigned num_regs)
    : QatBackend(ways, num_regs) {
  if (ways == 0 || ways > kMaxAobWays) {
    throw std::invalid_argument("DenseQatBackend: ways out of range");
  }
  words_per_reg_ = bitview::words_for(ways);
  slab_.assign(std::size_t{num_regs} * words_per_reg_, 0);
  slot_.resize(num_regs);
  for (std::uint32_t i = 0; i < num_regs; ++i) slot_[i] = i;
  dirty_.assign(num_regs, false);
}

void DenseQatBackend::reset_state() {
  for (std::size_t s = 0; s < dirty_.size(); ++s) {
    if (!dirty_[s]) continue;
    std::fill_n(slab_.data() + s * words_per_reg_, words_per_reg_,
                std::uint64_t{0});
    dirty_[s] = false;
  }
  for (std::uint32_t i = 0; i < slot_.size(); ++i) slot_[i] = i;
  // clear() without shrink_to_fit: the sidecar's capacity is part of the
  // cache-hot arena a pooled simulator reuses; its *size* (the observable
  // state) matches a fresh backend's empty sidecar.
  check_.clear();
  verified_at_.clear();
  pending_ = EccSweep{};
  ecc_ = EccMode::kOff;
  ecc_epoch_ = 1;
  ecc_now_ = 0;
  threads_ = 1;
  shards_.reset();
}

// The data ops below are fused verify-compute-encode sweeps: one pass over
// the operand words does the payload arithmetic AND maintains the check
// sidecar, instead of a verify pre-pass plus a separate encode-on-writeback
// pass.  SECDED is linear over XOR (encode(a ^ b) == encode(a) ^ encode(b),
// encode(0) == 0), so:
//   * XOR-family destinations derive their check bytes from the operands'
//     (cnot/xor_: ca ^= cb; not_: ca ^= encode(live-mask));
//   * AND/OR-family results are re-encoded from the result word, one
//     table-driven encode per word, in the same loop iteration;
//   * conditional exchanges XOR the same delta t into both payloads and
//     encode(t) into both sidecars.
// Either way a pre-existing upset keeps an intact syndrome: payload and
// check byte always move by a consistent (delta, encode(delta)) pair, so
// the register's syndrome is invariant under its own update and the upset
// stays exactly as detectable afterwards.

void DenseQatBackend::zero(unsigned a) {
  const unsigned i = idx(a);
  std::fill_n(wp(i), words_per_reg_, std::uint64_t{0});
  dirty_[slot_[i]] = false;  // back at the power-on value
  if (ecc_ != EccMode::kOff) {
    std::fill_n(chk(i), words_per_reg_, std::uint8_t{0});  // encode(0) == 0
    vstamp(i) = stamp_now();
  }
}

void DenseQatBackend::one(unsigned a) {
  const unsigned i = idx(a);
  bitview::fill_ones(wp(i), words_per_reg_, ways_);
  mark_dirty(i);
  encode_reg(i);
}

void DenseQatBackend::had(unsigned a, unsigned k) {
  const unsigned i = idx(a);
  const Aob h = hadamard_generate(ways_, k);
  std::copy_n(h.words().data(), words_per_reg_, wp(i));
  mark_dirty(i);
  encode_reg(i);
}

void DenseQatBackend::not_(unsigned a) {
  const unsigned i = idx(a);
  verify_reg(i);
  bitview::invert(wp(i), words_per_reg_, ways_);
  mark_dirty(i);
  if (ecc_ != EccMode::kOff) {
    // invert() XORs every live bit: one constant delta per word.
    const std::uint64_t live =
        channels() >= 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << channels()) - 1;
    const std::uint8_t d = secded64_encode_fast(live);
    std::uint8_t* c = chk(i);
    for (std::size_t j = 0; j < words_per_reg_; ++j) c[j] ^= d;
  }
}

void DenseQatBackend::cnot(unsigned a, unsigned b) {
  const unsigned ia = idx(a), ib = idx(b);
  verify_reg(ia);
  verify_reg(ib);
  std::uint64_t* wa = wp(ia);
  const std::uint64_t* wb = wp(ib);
  mark_dirty(ia);
  if (ecc_ == EccMode::kOff) {
    for_shards([&](std::size_t b0, std::size_t b1, unsigned) {
      simd::xor_inplace(wa + b0, wb + b0, b1 - b0);
    });
    return;
  }
  std::uint8_t* ca = chk(ia);
  const std::uint8_t* cb = chk(ib);
  for_shards([&](std::size_t b0, std::size_t b1, unsigned) {
    simd::cnot_ecc(wa + b0, wb + b0, ca + b0, cb + b0, b1 - b0);
  });
  stamp_dest(ia, std::min(vstamp(ia), vstamp(ib)));
}

void DenseQatBackend::ccnot(unsigned a, unsigned b, unsigned c) {
  const unsigned ia = idx(a), ib = idx(b), ic = idx(c);
  verify_reg(ia);
  verify_reg(ib);
  verify_reg(ic);
  std::uint64_t* wa = wp(ia);
  const std::uint64_t* wb = wp(ib);
  const std::uint64_t* wc = wp(ic);
  mark_dirty(ia);
  if (ecc_ == EccMode::kOff) {
    for_shards([&](std::size_t b0, std::size_t b1, unsigned) {
      simd::ccnot(wa + b0, wb + b0, wc + b0, b1 - b0);
    });
    return;
  }
  std::uint8_t* ca = chk(ia);
  for_shards([&](std::size_t b0, std::size_t b1, unsigned) {
    simd::ccnot_ecc(wa + b0, wb + b0, wc + b0, ca + b0, b1 - b0);
  });
  stamp_dest(ia, std::min({vstamp(ia), vstamp(ib), vstamp(ic)}));
}

void DenseQatBackend::swap(unsigned a, unsigned b) {
  if (idx(a) == idx(b)) return;
  // A register move is a slot exchange: payload, sidecar, epoch stamp and
  // dirty flag all travel together (they are slot-indexed), so an upset in
  // either register stays exactly as detectable after the swap.
  std::swap(slot_[idx(a)], slot_[idx(b)]);
}

void DenseQatBackend::cswap(unsigned a, unsigned b, unsigned c) {
  const unsigned ia = idx(a), ib = idx(b), ic = idx(c);
  if (ia == ib) return;
  verify_reg(ia);
  verify_reg(ib);
  verify_reg(ic);
  std::uint64_t* wa = wp(ia);
  std::uint64_t* wb = wp(ib);
  const std::uint64_t* wc = wp(ic);
  mark_dirty(ia);
  mark_dirty(ib);
  if (ecc_ == EccMode::kOff) {
    // Aliasing with the control is well-defined: each word's delta is
    // computed from pre-update values before either target word is written.
    for_shards([&](std::size_t b0, std::size_t b1, unsigned) {
      simd::cswap(wa + b0, wb + b0, wc + b0, b1 - b0);
    });
    return;
  }
  std::uint8_t* ca = chk(ia);
  std::uint8_t* cb = chk(ib);
  for_shards([&](std::size_t b0, std::size_t b1, unsigned) {
    simd::cswap_ecc(wa + b0, wb + b0, wc + b0, ca + b0, cb + b0, b1 - b0);
  });
  const std::uint64_t s = std::min({vstamp(ia), vstamp(ib), vstamp(ic)});
  stamp_dest(ia, s);
  stamp_dest(ib, s);
}

void DenseQatBackend::and_(unsigned a, unsigned b, unsigned c) {
  const unsigned ia = idx(a), ib = idx(b), ic = idx(c);
  verify_reg(ib);
  verify_reg(ic);
  std::uint64_t* wa = wp(ia);
  const std::uint64_t* wb = wp(ib);
  const std::uint64_t* wc = wp(ic);
  mark_dirty(ia);
  if (ecc_ == EccMode::kOff) {
    for_shards([&](std::size_t b0, std::size_t b1, unsigned) {
      simd::and3(wa + b0, wb + b0, wc + b0, b1 - b0);
    });
    return;
  }
  std::uint8_t* ca = chk(ia);
  for_shards([&](std::size_t b0, std::size_t b1, unsigned) {
    simd::and3_ecc(wa + b0, wb + b0, wc + b0, ca + b0, b1 - b0);
  });
  stamp_dest(ia, std::min(vstamp(ib), vstamp(ic)));
}

void DenseQatBackend::or_(unsigned a, unsigned b, unsigned c) {
  const unsigned ia = idx(a), ib = idx(b), ic = idx(c);
  verify_reg(ib);
  verify_reg(ic);
  std::uint64_t* wa = wp(ia);
  const std::uint64_t* wb = wp(ib);
  const std::uint64_t* wc = wp(ic);
  mark_dirty(ia);
  if (ecc_ == EccMode::kOff) {
    for_shards([&](std::size_t b0, std::size_t b1, unsigned) {
      simd::or3(wa + b0, wb + b0, wc + b0, b1 - b0);
    });
    return;
  }
  std::uint8_t* ca = chk(ia);
  for_shards([&](std::size_t b0, std::size_t b1, unsigned) {
    simd::or3_ecc(wa + b0, wb + b0, wc + b0, ca + b0, b1 - b0);
  });
  stamp_dest(ia, std::min(vstamp(ib), vstamp(ic)));
}

void DenseQatBackend::xor_(unsigned a, unsigned b, unsigned c) {
  const unsigned ia = idx(a), ib = idx(b), ic = idx(c);
  verify_reg(ib);
  verify_reg(ic);
  std::uint64_t* wa = wp(ia);
  const std::uint64_t* wb = wp(ib);
  const std::uint64_t* wc = wp(ic);
  mark_dirty(ia);
  if (ecc_ == EccMode::kOff) {
    for_shards([&](std::size_t b0, std::size_t b1, unsigned) {
      simd::xor3(wa + b0, wb + b0, wc + b0, b1 - b0);
    });
    return;
  }
  std::uint8_t* ca = chk(ia);
  const std::uint8_t* cb = chk(ib);
  const std::uint8_t* cc = chk(ic);
  for_shards([&](std::size_t b0, std::size_t b1, unsigned) {
    simd::xor3_ecc(wa + b0, wb + b0, wc + b0, ca + b0, cb + b0, cc + b0,
                   b1 - b0);
  });
  stamp_dest(ia, std::min(vstamp(ib), vstamp(ic)));
}

bool DenseQatBackend::meas(unsigned a, std::size_t ch) const {
  verify_reg(a);
  return bitview::get(wp(idx(a)), ways_, ch);
}

std::optional<std::size_t> DenseQatBackend::next_one(unsigned a,
                                                     std::size_t ch) const {
  verify_reg(a);
  return bitview::next_one(wp(idx(a)), words_per_reg_, ways_, ch);
}

std::size_t DenseQatBackend::pop_after(unsigned a, std::size_t ch) const {
  verify_reg(a);
  return bitview::popcount_after(wp(idx(a)), words_per_reg_, ways_, ch);
}

std::size_t DenseQatBackend::popcount(unsigned a) const {
  verify_reg(a);
  return bitview::popcount(wp(idx(a)), words_per_reg_);
}

bool DenseQatBackend::any(unsigned a) const {
  verify_reg(a);
  return bitview::any(wp(idx(a)), words_per_reg_);
}

bool DenseQatBackend::all(unsigned a) const {
  verify_reg(a);
  return bitview::all(wp(idx(a)), words_per_reg_, ways_);
}

Aob DenseQatBackend::reg_aob(unsigned a) const {
  verify_reg(a);
  Aob out(ways_);
  std::copy_n(wp(idx(a)), words_per_reg_, out.words_mut().data());
  return out;
}

void DenseQatBackend::set_reg_aob(unsigned a, const Aob& v) {
  if (v.ways() != ways_) {
    throw std::invalid_argument("DenseQatBackend: wrong AoB size");
  }
  const unsigned i = idx(a);
  std::copy_n(v.words().data(), words_per_reg_, wp(i));
  mark_dirty(i);
  encode_reg(i);
}

void DenseQatBackend::set_channel(unsigned a, std::size_t ch, bool v) {
  const unsigned i = idx(a);
  verify_reg(i);  // repair first: a read-modify-write of one channel
  bitview::set(wp(i), ways_, ch, v);
  mark_dirty(i);
  if (ecc_ != EccMode::kOff) {
    // Only one payload word changed; re-encode just that word.
    const std::size_t word = (ch & (channels() - 1)) / 64;
    chk(i)[word] = secded64_encode_fast(wp(i)[word]);
  }
}

std::string DenseQatBackend::reg_string(unsigned a,
                                        std::size_t max_bits) const {
  verify_reg(a);
  return bitview::to_string(wp(idx(a)), ways_, max_bits);
}

std::size_t DenseQatBackend::storage_bytes() const {
  return static_cast<std::size_t>(num_regs_) * (channels() / 8);
}

// --- Dense integrity layer ---

void DenseQatBackend::encode_reg(unsigned i) {
  if (ecc_ == EccMode::kOff) return;
  const std::uint64_t* w = wp(i);
  for_shards([&](std::size_t b0, std::size_t b1, unsigned) {
    secded64_encode_block(w + b0, chk(i) + b0, b1 - b0);
  });
  vstamp(i) = stamp_now();
}

void DenseQatBackend::set_ecc_mode(EccMode m) {
  ecc_ = m;
  if (ecc_ == EccMode::kOff) {
    // Lazy sidecar: protection off stores (and pays) nothing.
    check_.clear();
    check_.shrink_to_fit();
    verified_at_.clear();
    verified_at_.shrink_to_fit();
    return;
  }
  check_.resize(std::size_t{num_regs_} * words_per_reg_);
  verified_at_.assign(num_regs_, 0);
  for (unsigned i = 0; i < num_regs_; ++i) encode_reg(i);
}

void DenseQatBackend::verify_reg(unsigned a) const {
  if (ecc_ == EccMode::kOff) return;
  const unsigned i = idx(a);
  if (epoch_fresh(vstamp(i))) {
    ++pending_.elided;
    return;
  }
  std::uint64_t* w = wp(i);
  EccCheck r;
  if (shards_ && words_per_reg_ >= kShardMinWords) {
    // Sharded sweep: per-shard tallies combined in shard order afterwards,
    // so the totals (and the thrown-or-not outcome) match the scalar path.
    std::vector<EccSweep> sweeps(threads_);
    std::vector<EccCheck> worst(threads_, EccCheck::kClean);
    for_shards([&](std::size_t b0, std::size_t b1, unsigned s) {
      worst[s] = secded64_check_block(ecc_, w + b0, chk(i) + b0, b1 - b0,
                                      sweeps[s]);
    });
    r = EccCheck::kClean;
    for (unsigned s = 0; s < threads_; ++s) {
      pending_ += sweeps[s];
      r = static_cast<EccCheck>(
          std::max(static_cast<int>(r), static_cast<int>(worst[s])));
    }
  } else {
    r = secded64_check_block(ecc_, w, chk(i), words_per_reg_, pending_);
  }
  if (r == EccCheck::kUncorrectable) {
    throw CorruptionError(
        ecc_ == EccMode::kDetect
            ? "DenseQatBackend: upset detected in register " +
                  std::to_string(i)
            : "DenseQatBackend: uncorrectable upset in register " +
                  std::to_string(i));
  }
  vstamp(i) = stamp_now();
}

EccSweep DenseQatBackend::scrub_ecc() {
  EccSweep sweep;
  if (ecc_ == EccMode::kOff) return sweep;
  for (unsigned i = 0; i < num_regs_; ++i) {
    // Ground truth: a scrub ignores the epoch stamps and sweeps everything,
    // then re-stamps what it verified clean (or repaired).
    std::uint64_t* w = wp(i);
    std::vector<EccSweep> sweeps(threads_);
    std::vector<EccCheck> worst(threads_, EccCheck::kClean);
    for_shards([&](std::size_t b0, std::size_t b1, unsigned s) {
      worst[s] = secded64_check_block(ecc_, w + b0, chk(i) + b0, b1 - b0,
                                      sweeps[s]);
    });
    EccCheck r = EccCheck::kClean;
    for (unsigned s = 0; s < threads_; ++s) {
      sweep += sweeps[s];
      r = static_cast<EccCheck>(
          std::max(static_cast<int>(r), static_cast<int>(worst[s])));
    }
    if (r != EccCheck::kUncorrectable) vstamp(i) = stamp_now();
  }
  return sweep;
}

void DenseQatBackend::set_threads(unsigned n) {
  if (n == 0) n = 1;
  threads_ = n;
  if (n == 1) {
    shards_.reset();
    return;
  }
  if (!shards_ || shards_->threads() != n) {
    shards_ = std::make_unique<ShardPool>(n);
  }
}

void DenseQatBackend::storage_upset(unsigned r, std::size_t ch) {
  const unsigned i = idx(r);
  std::uint64_t* w = wp(i);
  const std::size_t bit = ch & (channels() - 1);
  w[bit / 64 % words_per_reg_] ^= std::uint64_t{1} << (bit % 64);
  mark_dirty(i);
  // Deliberately no stamp change: the upset model corrupts storage behind
  // the machine's back, and the epoch policy bounds how long that can stay
  // unseen.
}

EccSweep DenseQatBackend::take_ecc_counts() {
  const EccSweep out = pending_;
  pending_ = EccSweep{};
  return out;
}

std::size_t DenseQatBackend::ecc_bytes() const { return check_.size(); }

namespace {

constexpr std::uint8_t kSnapshotDense = 0;
constexpr std::uint8_t kSnapshotRe = 1;

void write_aob_words(ByteWriter& w, const Aob& a) {
  for (const std::uint64_t word : a.words()) w.u64(word);
}

Aob read_aob_words(ByteReader& r, unsigned ways) {
  Aob a(ways);
  auto words = a.words_mut();
  for (auto& word : words) word = r.u64();
  return a;
}

}  // namespace

void DenseQatBackend::serialize(ByteWriter& w) const {
  w.u8(kSnapshotDense);
  w.u32(ways_);
  w.u32(num_regs_);
  for (unsigned i = 0; i < num_regs_; ++i) {
    w.u64_array(wp(i), words_per_reg_);
  }
}

std::unique_ptr<DenseQatBackend> DenseQatBackend::deserialize(ByteReader& r) {
  const unsigned ways = r.u32();
  const unsigned num_regs = r.u32();
  // Size the register file against the bytes actually present BEFORE
  // allocating: a malformed header claiming 2^32 registers must fail as a
  // truncated stream, not as a multi-gigabyte allocation.
  if (ways == 0 || ways > kMaxAobWays || num_regs == 0) {
    throw std::runtime_error("DenseQatBackend: snapshot geometry invalid");
  }
  const std::size_t words_per_reg =
      ways >= 6 ? (std::size_t{1} << (ways - 6)) : 1;
  if (num_regs > r.remaining() / 8 / words_per_reg) {
    throw std::runtime_error("DenseQatBackend: snapshot truncated");
  }
  auto b = std::make_unique<DenseQatBackend>(ways, num_regs);
  for (unsigned i = 0; i < num_regs; ++i) {
    r.u64_array(b->wp(i), words_per_reg);
    b->mark_dirty(i);
  }
  return b;
}

// ---------------------------------------------------------------------------
// ReQatBackend — copy-on-write compressed register file.

ReQatBackend::ReQatBackend(unsigned ways, unsigned num_regs,
                           unsigned chunk_ways)
    : ReQatBackend(std::make_shared<ChunkPool>(std::min(chunk_ways, ways)),
                   ways, num_regs) {}

ReQatBackend::ReQatBackend(std::shared_ptr<ChunkPool> pool, unsigned ways,
                           unsigned num_regs)
    : QatBackend(ways, num_regs),
      pool_(std::move(pool)),
      constants_(2 + ways) {
  if (ways == 0 || ways > kMaxReWays) {
    throw std::invalid_argument("ReQatBackend: ways out of range");
  }
  if (!pool_) {
    throw std::invalid_argument("ReQatBackend: null pool");
  }
  if (ways < pool_->chunk_ways()) {
    throw std::invalid_argument("ReQatBackend: ways below pool chunk_ways");
  }
  regs_.assign(num_regs, constant(0));
}

std::shared_ptr<const Re> ReQatBackend::constant(unsigned which_k) {
  auto& slot = constants_[which_k];
  if (!slot) {
    if (which_k == 0) {
      slot = std::make_shared<const Re>(Re::zeros(pool_, ways_));
    } else if (which_k == 1) {
      slot = std::make_shared<const Re>(Re::ones(pool_, ways_));
    } else {
      slot = std::make_shared<const Re>(
          Re::hadamard(pool_, ways_, which_k - 2));
    }
  }
  return slot;
}

void ReQatBackend::zero(unsigned a) { regs_[idx(a)] = constant(0); }

void ReQatBackend::one(unsigned a) { regs_[idx(a)] = constant(1); }

void ReQatBackend::had(unsigned a, unsigned k) {
  if (k >= ways_) {
    // hadamard_generate yields all-zeros past the register width; match it.
    regs_[idx(a)] = constant(0);
    return;
  }
  regs_[idx(a)] = constant(2 + k);
}

void ReQatBackend::guard(unsigned r) const {
  if (pool_->ecc_mode() == EccMode::kOff) return;
  for (const auto& [sym, count] : get(r).runs()) {
    (void)count;
    pool_->verify_symbol(sym);
  }
}

void ReQatBackend::not_(unsigned a) {
  guard(a);
  Re t = get(a);
  t.invert();
  put(a, std::move(t));
}

void ReQatBackend::cnot(unsigned a, unsigned b) {
  guard(a);
  guard(b);
  Re t = get(a);
  t.apply(BitOp::Xor, get(b));
  put(a, std::move(t));
}

void ReQatBackend::ccnot(unsigned a, unsigned b, unsigned c) {
  guard(a);
  guard(b);
  guard(c);
  Re m = get(b);
  m.apply(BitOp::And, get(c));
  Re t = get(a);
  t.apply(BitOp::Xor, m);
  put(a, std::move(t));
}

void ReQatBackend::swap(unsigned a, unsigned b) {
  if (idx(a) == idx(b)) return;
  // The whole point of copy-on-write: a register move is a pointer move.
  // No guard needed — the runs (and any upset in the chunks they share)
  // travel untouched.
  regs_[idx(a)].swap(regs_[idx(b)]);
}

void ReQatBackend::cswap(unsigned a, unsigned b, unsigned c) {
  if (idx(a) == idx(b)) return;
  guard(a);
  guard(b);
  guard(c);
  Re va = get(a);
  Re vb = get(b);
  Re::cswap(va, vb, get(c));
  put(a, std::move(va));
  put(b, std::move(vb));
}

void ReQatBackend::and_(unsigned a, unsigned b, unsigned c) {
  guard(b);
  guard(c);
  Re t = get(b);
  t.apply(BitOp::And, get(c));
  put(a, std::move(t));
}

void ReQatBackend::or_(unsigned a, unsigned b, unsigned c) {
  guard(b);
  guard(c);
  Re t = get(b);
  t.apply(BitOp::Or, get(c));
  put(a, std::move(t));
}

void ReQatBackend::xor_(unsigned a, unsigned b, unsigned c) {
  guard(b);
  guard(c);
  Re t = get(b);
  t.apply(BitOp::Xor, get(c));
  put(a, std::move(t));
}

bool ReQatBackend::meas(unsigned a, std::size_t ch) const {
  guard(a);
  return get(a).get(ch);
}

std::optional<std::size_t> ReQatBackend::next_one(unsigned a,
                                                  std::size_t ch) const {
  guard(a);
  return get(a).next_one(ch);
}

std::size_t ReQatBackend::pop_after(unsigned a, std::size_t ch) const {
  guard(a);
  return get(a).popcount_after(ch);
}

std::size_t ReQatBackend::popcount(unsigned a) const {
  guard(a);
  return get(a).popcount();
}

bool ReQatBackend::any(unsigned a) const {
  guard(a);
  return get(a).any();
}

bool ReQatBackend::all(unsigned a) const {
  guard(a);
  return get(a).all();
}

Aob ReQatBackend::reg_aob(unsigned a) const {
  if (ways_ > kMaxAobWays) {
    throw std::length_error(
        "ReQatBackend: register too wide to materialize densely");
  }
  guard(a);
  return get(a).to_aob();
}

void ReQatBackend::set_reg_aob(unsigned a, const Aob& v) {
  if (v.ways() != ways_) {
    throw std::invalid_argument("ReQatBackend: wrong AoB size");
  }
  put(a, Re::from_aob(pool_, v));
}

void ReQatBackend::set_channel(unsigned a, std::size_t ch, bool v) {
  guard(a);  // repair first: a read-modify-write of one channel
  Re t = get(a);
  t.set(ch, v);
  put(a, std::move(t));
}

std::string ReQatBackend::reg_string(unsigned a, std::size_t max_bits) const {
  guard(a);
  return get(a).to_string(max_bits);
}

void ReQatBackend::set_ecc_mode(EccMode m) {
  ecc_ = m;
  pool_->set_ecc_mode(m);
}

void ReQatBackend::storage_upset(unsigned r, std::size_t ch) {
  const Re& v = get(r);
  ch &= v.bit_count() - 1;
  const std::size_t cbits = pool_->chunk_bits();
  std::uint64_t chunk_index = ch / cbits;
  for (const auto& [sym, count] : v.runs()) {
    if (chunk_index < count) {
      // The flip lands in the shared pool chunk: every run of every
      // register referencing this symbol reads the corruption.
      pool_->upset(sym, ch % cbits);
      return;
    }
    chunk_index -= count;
  }
}

std::size_t ReQatBackend::storage_bytes() const {
  std::size_t n = 0;
  for (const auto& r : regs_) n += r->compressed_bytes();
  return n;
}

std::size_t ReQatBackend::total_runs() const {
  std::size_t n = 0;
  for (const auto& r : regs_) n += r->run_count();
  return n;
}

void ReQatBackend::serialize(ByteWriter& w) const {
  w.u8(kSnapshotRe);
  w.u32(ways_);
  w.u32(num_regs_);
  w.u32(pool_->chunk_ways());
  w.u64(pool_->max_symbols());
  // Pool symbols 0 (zeros) and 1 (ones) are implicit — every ChunkPool
  // interns them at construction in that order.
  w.u32(static_cast<std::uint32_t>(pool_->size()));
  for (ChunkPool::SymbolId id = 2; id < pool_->size(); ++id) {
    write_aob_words(w, pool_->chunk(id));
  }
  for (const auto& reg : regs_) {
    const auto runs = reg->runs();
    w.u32(static_cast<std::uint32_t>(runs.size()));
    for (const auto& [sym, count] : runs) {
      w.u32(sym);
      w.u64(count);
    }
  }
}

std::unique_ptr<ReQatBackend> ReQatBackend::deserialize(ByteReader& r) {
  const unsigned ways = r.u32();
  const unsigned num_regs = r.u32();
  const unsigned chunk_ways = r.u32();
  const std::uint64_t max_symbols = r.u64();
  auto b = std::make_unique<ReQatBackend>(ways, num_regs, chunk_ways);
  // Re-intern the chunk table in id order: hash-consing plus the absence of
  // duplicates in a serialized pool make the ids come back identical.
  const std::uint32_t n_symbols = r.u32();
  for (std::uint32_t id = 2; id < n_symbols; ++id) {
    const ChunkPool::SymbolId got =
        b->pool_->intern(read_aob_words(r, b->pool_->chunk_ways()));
    if (got != id) {
      throw std::runtime_error("ReQatBackend: snapshot pool not canonical");
    }
  }
  // Reapply the cap only after the snapshot's own symbols are back in — a
  // forced-exhaustion cap must survive restore, not block it.
  b->pool_->set_max_symbols(max_symbols);
  for (unsigned i = 0; i < num_regs; ++i) {
    const std::uint32_t n_runs = r.u32();
    // Each run is 12 serialized bytes; cap the reservation by what the
    // stream can actually hold so a flipped length field cannot demand a
    // 48 GiB vector before the reader notices the truncation.
    if (n_runs > r.remaining() / 12) {
      throw std::runtime_error("ReQatBackend: snapshot truncated");
    }
    std::vector<std::pair<ChunkPool::SymbolId, std::uint64_t>> runs;
    runs.reserve(n_runs);
    for (std::uint32_t j = 0; j < n_runs; ++j) {
      const ChunkPool::SymbolId sym = r.u32();
      const std::uint64_t count = r.u64();
      runs.emplace_back(sym, count);
    }
    b->regs_[i] =
        std::make_shared<const Re>(Re::from_runs(b->pool_, ways, runs));
  }
  return b;
}

// ---------------------------------------------------------------------------

std::size_t dense_backend_bytes(unsigned ways, unsigned num_regs) {
  if (ways >= 64) return SIZE_MAX;
  const std::size_t per_reg = (std::size_t{1} << ways) / 8;
  if (per_reg != 0 && num_regs > SIZE_MAX / per_reg) return SIZE_MAX;
  // Sub-byte registers (ways < 3) still occupy at least a word each.
  return num_regs * std::max<std::size_t>(per_reg, 8);
}

std::unique_ptr<QatBackend> make_qat_backend(Backend kind, unsigned ways,
                                             unsigned num_regs,
                                             unsigned chunk_ways) {
  switch (kind) {
    case Backend::kDense:
      return std::make_unique<DenseQatBackend>(ways, num_regs);
    case Backend::kCompressed:
      return std::make_unique<ReQatBackend>(ways, num_regs, chunk_ways);
  }
  throw std::invalid_argument("make_qat_backend: unknown backend");
}

std::unique_ptr<QatBackend> deserialize_qat_backend(ByteReader& r) {
  switch (r.u8()) {
    case kSnapshotDense:
      return DenseQatBackend::deserialize(r);
    case kSnapshotRe:
      return ReQatBackend::deserialize(r);
    default:
      throw std::runtime_error("deserialize_qat_backend: unknown kind byte");
  }
}

}  // namespace pbp
