#include "pbp/qat_backend.hpp"

#include <algorithm>
#include <stdexcept>

#include "pbp/hadamard.hpp"

namespace pbp {

QatBackend::QatBackend(unsigned ways, unsigned num_regs)
    : ways_(ways), num_regs_(num_regs) {
  if (num_regs == 0) {
    throw std::invalid_argument("QatBackend: no registers");
  }
}

// ---------------------------------------------------------------------------
// DenseQatBackend — the historical std::vector<Aob> register file.

DenseQatBackend::DenseQatBackend(unsigned ways, unsigned num_regs)
    : QatBackend(ways, num_regs) {
  if (ways == 0 || ways > kMaxAobWays) {
    throw std::invalid_argument("DenseQatBackend: ways out of range");
  }
  regs_.assign(num_regs, Aob::zeros(ways));
}

void DenseQatBackend::zero(unsigned a) {
  regs_[idx(a)] = Aob::zeros(ways_);
  encode_reg(idx(a));
}

void DenseQatBackend::one(unsigned a) {
  regs_[idx(a)] = Aob::ones(ways_);
  encode_reg(idx(a));
}

void DenseQatBackend::had(unsigned a, unsigned k) {
  regs_[idx(a)] = hadamard_generate(ways_, k);
  encode_reg(idx(a));
}

void DenseQatBackend::not_(unsigned a) {
  verify_reg(a);
  regs_[idx(a)].invert();
  encode_reg(idx(a));
}

void DenseQatBackend::cnot(unsigned a, unsigned b) {
  verify_reg(a);
  verify_reg(b);
  regs_[idx(a)] ^= regs_[idx(b)];
  encode_reg(idx(a));
}

void DenseQatBackend::ccnot(unsigned a, unsigned b, unsigned c) {
  verify_reg(a);
  verify_reg(b);
  verify_reg(c);
  regs_[idx(a)] ^= regs_[idx(b)] & regs_[idx(c)];
  encode_reg(idx(a));
}

void DenseQatBackend::swap(unsigned a, unsigned b) {
  if (idx(a) == idx(b)) return;
  // A register move carries payload and sidecar together — an upset in
  // either register stays exactly as detectable after the swap.
  Aob::swap_values(regs_[idx(a)], regs_[idx(b)]);
  if (ecc_ != EccMode::kOff) check_[idx(a)].swap(check_[idx(b)]);
}

void DenseQatBackend::cswap(unsigned a, unsigned b, unsigned c) {
  if (idx(a) == idx(b)) return;
  verify_reg(a);
  verify_reg(b);
  verify_reg(c);
  // Aliasing with the control is well-defined: the control is read once.
  const Aob control = regs_[idx(c)];
  Aob::cswap(regs_[idx(a)], regs_[idx(b)], control);
  encode_reg(idx(a));
  encode_reg(idx(b));
}

void DenseQatBackend::and_(unsigned a, unsigned b, unsigned c) {
  verify_reg(b);
  verify_reg(c);
  regs_[idx(a)] = regs_[idx(b)] & regs_[idx(c)];
  encode_reg(idx(a));
}

void DenseQatBackend::or_(unsigned a, unsigned b, unsigned c) {
  verify_reg(b);
  verify_reg(c);
  regs_[idx(a)] = regs_[idx(b)] | regs_[idx(c)];
  encode_reg(idx(a));
}

void DenseQatBackend::xor_(unsigned a, unsigned b, unsigned c) {
  verify_reg(b);
  verify_reg(c);
  regs_[idx(a)] = regs_[idx(b)] ^ regs_[idx(c)];
  encode_reg(idx(a));
}

bool DenseQatBackend::meas(unsigned a, std::size_t ch) const {
  verify_reg_c(a);
  return regs_[idx(a)].get(ch);
}

std::optional<std::size_t> DenseQatBackend::next_one(unsigned a,
                                                     std::size_t ch) const {
  verify_reg_c(a);
  return regs_[idx(a)].next_one(ch);
}

std::size_t DenseQatBackend::pop_after(unsigned a, std::size_t ch) const {
  verify_reg_c(a);
  return regs_[idx(a)].popcount_after(ch);
}

std::size_t DenseQatBackend::popcount(unsigned a) const {
  verify_reg_c(a);
  return regs_[idx(a)].popcount();
}

bool DenseQatBackend::any(unsigned a) const {
  verify_reg_c(a);
  return regs_[idx(a)].any();
}

bool DenseQatBackend::all(unsigned a) const {
  verify_reg_c(a);
  return regs_[idx(a)].all();
}

Aob DenseQatBackend::reg_aob(unsigned a) const {
  verify_reg_c(a);
  return regs_[idx(a)];
}

void DenseQatBackend::set_reg_aob(unsigned a, const Aob& v) {
  if (v.ways() != ways_) {
    throw std::invalid_argument("DenseQatBackend: wrong AoB size");
  }
  regs_[idx(a)] = v;
  encode_reg(idx(a));
}

void DenseQatBackend::set_channel(unsigned a, std::size_t ch, bool v) {
  verify_reg(a);  // repair first: a read-modify-write of one channel
  regs_[idx(a)].set(ch, v);
  encode_reg(idx(a));
}

std::string DenseQatBackend::reg_string(unsigned a,
                                        std::size_t max_bits) const {
  verify_reg_c(a);
  return regs_[idx(a)].to_string(max_bits);
}

std::size_t DenseQatBackend::storage_bytes() const {
  return static_cast<std::size_t>(num_regs_) * (channels() / 8);
}

// --- Dense integrity layer ---

void DenseQatBackend::encode_reg(unsigned i) {
  if (ecc_ == EccMode::kOff) return;
  const auto w = regs_[i].words();
  check_[i].resize(w.size());
  for (std::size_t j = 0; j < w.size(); ++j) {
    check_[i][j] = secded64_encode(w[j]);
  }
}

void DenseQatBackend::set_ecc_mode(EccMode m) {
  ecc_ = m;
  if (ecc_ == EccMode::kOff) {
    check_.clear();
    check_.shrink_to_fit();
    return;
  }
  check_.resize(regs_.size());
  for (unsigned i = 0; i < regs_.size(); ++i) encode_reg(i);
}

void DenseQatBackend::verify_reg(unsigned a) {
  if (ecc_ == EccMode::kOff) return;
  const unsigned i = idx(a);
  const auto w = regs_[i].words_mut();
  auto& chk = check_[i];
  pending_.words += w.size();
  for (std::size_t j = 0; j < w.size(); ++j) {
    if (ecc_ == EccMode::kDetect) {
      if (!secded64_clean(w[j], chk[j])) {
        ++pending_.uncorrectable;
        throw CorruptionError("DenseQatBackend: upset detected in register " +
                              std::to_string(i));
      }
      continue;
    }
    switch (secded64_check(w[j], chk[j])) {
      case EccCheck::kClean:
        break;
      case EccCheck::kCorrected:
        ++pending_.corrected;
        break;
      case EccCheck::kUncorrectable:
        ++pending_.uncorrectable;
        throw CorruptionError(
            "DenseQatBackend: uncorrectable upset in register " +
            std::to_string(i));
    }
  }
}

EccSweep DenseQatBackend::scrub_ecc() {
  EccSweep sweep;
  if (ecc_ == EccMode::kOff) return sweep;
  for (unsigned i = 0; i < regs_.size(); ++i) {
    const auto w = regs_[i].words_mut();
    auto& chk = check_[i];
    sweep.words += w.size();
    for (std::size_t j = 0; j < w.size(); ++j) {
      if (ecc_ == EccMode::kDetect) {
        if (!secded64_clean(w[j], chk[j])) ++sweep.uncorrectable;
        continue;
      }
      switch (secded64_check(w[j], chk[j])) {
        case EccCheck::kClean:
          break;
        case EccCheck::kCorrected:
          ++sweep.corrected;
          break;
        case EccCheck::kUncorrectable:
          ++sweep.uncorrectable;
          break;
      }
    }
  }
  return sweep;
}

void DenseQatBackend::storage_upset(unsigned r, std::size_t ch) {
  const auto w = regs_[idx(r)].words_mut();
  const std::size_t bit = ch & (channels() - 1);
  w[bit / 64 % w.size()] ^= std::uint64_t{1} << (bit % 64);
}

EccSweep DenseQatBackend::take_ecc_counts() {
  const EccSweep out = pending_;
  pending_ = EccSweep{};
  return out;
}

std::size_t DenseQatBackend::ecc_bytes() const {
  std::size_t n = 0;
  for (const auto& chk : check_) n += chk.size();
  return n;
}

namespace {

constexpr std::uint8_t kSnapshotDense = 0;
constexpr std::uint8_t kSnapshotRe = 1;

void write_aob_words(ByteWriter& w, const Aob& a) {
  for (const std::uint64_t word : a.words()) w.u64(word);
}

Aob read_aob_words(ByteReader& r, unsigned ways) {
  Aob a(ways);
  auto words = a.words_mut();
  for (auto& word : words) word = r.u64();
  return a;
}

}  // namespace

void DenseQatBackend::serialize(ByteWriter& w) const {
  w.u8(kSnapshotDense);
  w.u32(ways_);
  w.u32(num_regs_);
  for (const Aob& reg : regs_) write_aob_words(w, reg);
}

std::unique_ptr<DenseQatBackend> DenseQatBackend::deserialize(ByteReader& r) {
  const unsigned ways = r.u32();
  const unsigned num_regs = r.u32();
  // Size the register file against the bytes actually present BEFORE
  // allocating: a malformed header claiming 2^32 registers must fail as a
  // truncated stream, not as a multi-gigabyte allocation.
  if (ways == 0 || ways > kMaxAobWays || num_regs == 0) {
    throw std::runtime_error("DenseQatBackend: snapshot geometry invalid");
  }
  const std::size_t words_per_reg =
      ways >= 6 ? (std::size_t{1} << (ways - 6)) : 1;
  if (num_regs > r.remaining() / 8 / words_per_reg) {
    throw std::runtime_error("DenseQatBackend: snapshot truncated");
  }
  auto b = std::make_unique<DenseQatBackend>(ways, num_regs);
  for (unsigned i = 0; i < num_regs; ++i) {
    b->regs_[i] = read_aob_words(r, ways);
  }
  return b;
}

// ---------------------------------------------------------------------------
// ReQatBackend — copy-on-write compressed register file.

ReQatBackend::ReQatBackend(unsigned ways, unsigned num_regs,
                           unsigned chunk_ways)
    : QatBackend(ways, num_regs),
      pool_(std::make_shared<ChunkPool>(std::min(chunk_ways, ways))),
      constants_(2 + ways) {
  if (ways == 0 || ways > kMaxReWays) {
    throw std::invalid_argument("ReQatBackend: ways out of range");
  }
  regs_.assign(num_regs, constant(0));
}

std::shared_ptr<const Re> ReQatBackend::constant(unsigned which_k) {
  auto& slot = constants_[which_k];
  if (!slot) {
    if (which_k == 0) {
      slot = std::make_shared<const Re>(Re::zeros(pool_, ways_));
    } else if (which_k == 1) {
      slot = std::make_shared<const Re>(Re::ones(pool_, ways_));
    } else {
      slot = std::make_shared<const Re>(
          Re::hadamard(pool_, ways_, which_k - 2));
    }
  }
  return slot;
}

void ReQatBackend::zero(unsigned a) { regs_[idx(a)] = constant(0); }

void ReQatBackend::one(unsigned a) { regs_[idx(a)] = constant(1); }

void ReQatBackend::had(unsigned a, unsigned k) {
  if (k >= ways_) {
    // hadamard_generate yields all-zeros past the register width; match it.
    regs_[idx(a)] = constant(0);
    return;
  }
  regs_[idx(a)] = constant(2 + k);
}

void ReQatBackend::guard(unsigned r) const {
  if (pool_->ecc_mode() == EccMode::kOff) return;
  for (const auto& [sym, count] : get(r).runs()) {
    (void)count;
    pool_->verify_symbol(sym);
  }
}

void ReQatBackend::not_(unsigned a) {
  guard(a);
  Re t = get(a);
  t.invert();
  put(a, std::move(t));
}

void ReQatBackend::cnot(unsigned a, unsigned b) {
  guard(a);
  guard(b);
  Re t = get(a);
  t.apply(BitOp::Xor, get(b));
  put(a, std::move(t));
}

void ReQatBackend::ccnot(unsigned a, unsigned b, unsigned c) {
  guard(a);
  guard(b);
  guard(c);
  Re m = get(b);
  m.apply(BitOp::And, get(c));
  Re t = get(a);
  t.apply(BitOp::Xor, m);
  put(a, std::move(t));
}

void ReQatBackend::swap(unsigned a, unsigned b) {
  if (idx(a) == idx(b)) return;
  // The whole point of copy-on-write: a register move is a pointer move.
  // No guard needed — the runs (and any upset in the chunks they share)
  // travel untouched.
  regs_[idx(a)].swap(regs_[idx(b)]);
}

void ReQatBackend::cswap(unsigned a, unsigned b, unsigned c) {
  if (idx(a) == idx(b)) return;
  guard(a);
  guard(b);
  guard(c);
  Re va = get(a);
  Re vb = get(b);
  Re::cswap(va, vb, get(c));
  put(a, std::move(va));
  put(b, std::move(vb));
}

void ReQatBackend::and_(unsigned a, unsigned b, unsigned c) {
  guard(b);
  guard(c);
  Re t = get(b);
  t.apply(BitOp::And, get(c));
  put(a, std::move(t));
}

void ReQatBackend::or_(unsigned a, unsigned b, unsigned c) {
  guard(b);
  guard(c);
  Re t = get(b);
  t.apply(BitOp::Or, get(c));
  put(a, std::move(t));
}

void ReQatBackend::xor_(unsigned a, unsigned b, unsigned c) {
  guard(b);
  guard(c);
  Re t = get(b);
  t.apply(BitOp::Xor, get(c));
  put(a, std::move(t));
}

bool ReQatBackend::meas(unsigned a, std::size_t ch) const {
  guard(a);
  return get(a).get(ch);
}

std::optional<std::size_t> ReQatBackend::next_one(unsigned a,
                                                  std::size_t ch) const {
  guard(a);
  return get(a).next_one(ch);
}

std::size_t ReQatBackend::pop_after(unsigned a, std::size_t ch) const {
  guard(a);
  return get(a).popcount_after(ch);
}

std::size_t ReQatBackend::popcount(unsigned a) const {
  guard(a);
  return get(a).popcount();
}

bool ReQatBackend::any(unsigned a) const {
  guard(a);
  return get(a).any();
}

bool ReQatBackend::all(unsigned a) const {
  guard(a);
  return get(a).all();
}

Aob ReQatBackend::reg_aob(unsigned a) const {
  if (ways_ > kMaxAobWays) {
    throw std::length_error(
        "ReQatBackend: register too wide to materialize densely");
  }
  guard(a);
  return get(a).to_aob();
}

void ReQatBackend::set_reg_aob(unsigned a, const Aob& v) {
  if (v.ways() != ways_) {
    throw std::invalid_argument("ReQatBackend: wrong AoB size");
  }
  put(a, Re::from_aob(pool_, v));
}

void ReQatBackend::set_channel(unsigned a, std::size_t ch, bool v) {
  guard(a);  // repair first: a read-modify-write of one channel
  Re t = get(a);
  t.set(ch, v);
  put(a, std::move(t));
}

std::string ReQatBackend::reg_string(unsigned a, std::size_t max_bits) const {
  guard(a);
  return get(a).to_string(max_bits);
}

void ReQatBackend::set_ecc_mode(EccMode m) {
  ecc_ = m;
  pool_->set_ecc_mode(m);
}

void ReQatBackend::storage_upset(unsigned r, std::size_t ch) {
  const Re& v = get(r);
  ch &= v.bit_count() - 1;
  const std::size_t cbits = pool_->chunk_bits();
  std::uint64_t chunk_index = ch / cbits;
  for (const auto& [sym, count] : v.runs()) {
    if (chunk_index < count) {
      // The flip lands in the shared pool chunk: every run of every
      // register referencing this symbol reads the corruption.
      pool_->upset(sym, ch % cbits);
      return;
    }
    chunk_index -= count;
  }
}

std::size_t ReQatBackend::storage_bytes() const {
  std::size_t n = 0;
  for (const auto& r : regs_) n += r->compressed_bytes();
  return n;
}

std::size_t ReQatBackend::total_runs() const {
  std::size_t n = 0;
  for (const auto& r : regs_) n += r->run_count();
  return n;
}

void ReQatBackend::serialize(ByteWriter& w) const {
  w.u8(kSnapshotRe);
  w.u32(ways_);
  w.u32(num_regs_);
  w.u32(pool_->chunk_ways());
  w.u64(pool_->max_symbols());
  // Pool symbols 0 (zeros) and 1 (ones) are implicit — every ChunkPool
  // interns them at construction in that order.
  w.u32(static_cast<std::uint32_t>(pool_->size()));
  for (ChunkPool::SymbolId id = 2; id < pool_->size(); ++id) {
    write_aob_words(w, pool_->chunk(id));
  }
  for (const auto& reg : regs_) {
    const auto runs = reg->runs();
    w.u32(static_cast<std::uint32_t>(runs.size()));
    for (const auto& [sym, count] : runs) {
      w.u32(sym);
      w.u64(count);
    }
  }
}

std::unique_ptr<ReQatBackend> ReQatBackend::deserialize(ByteReader& r) {
  const unsigned ways = r.u32();
  const unsigned num_regs = r.u32();
  const unsigned chunk_ways = r.u32();
  const std::uint64_t max_symbols = r.u64();
  auto b = std::make_unique<ReQatBackend>(ways, num_regs, chunk_ways);
  // Re-intern the chunk table in id order: hash-consing plus the absence of
  // duplicates in a serialized pool make the ids come back identical.
  const std::uint32_t n_symbols = r.u32();
  for (std::uint32_t id = 2; id < n_symbols; ++id) {
    const ChunkPool::SymbolId got =
        b->pool_->intern(read_aob_words(r, b->pool_->chunk_ways()));
    if (got != id) {
      throw std::runtime_error("ReQatBackend: snapshot pool not canonical");
    }
  }
  // Reapply the cap only after the snapshot's own symbols are back in — a
  // forced-exhaustion cap must survive restore, not block it.
  b->pool_->set_max_symbols(max_symbols);
  for (unsigned i = 0; i < num_regs; ++i) {
    const std::uint32_t n_runs = r.u32();
    // Each run is 12 serialized bytes; cap the reservation by what the
    // stream can actually hold so a flipped length field cannot demand a
    // 48 GiB vector before the reader notices the truncation.
    if (n_runs > r.remaining() / 12) {
      throw std::runtime_error("ReQatBackend: snapshot truncated");
    }
    std::vector<std::pair<ChunkPool::SymbolId, std::uint64_t>> runs;
    runs.reserve(n_runs);
    for (std::uint32_t j = 0; j < n_runs; ++j) {
      const ChunkPool::SymbolId sym = r.u32();
      const std::uint64_t count = r.u64();
      runs.emplace_back(sym, count);
    }
    b->regs_[i] =
        std::make_shared<const Re>(Re::from_runs(b->pool_, ways, runs));
  }
  return b;
}

// ---------------------------------------------------------------------------

std::size_t dense_backend_bytes(unsigned ways, unsigned num_regs) {
  if (ways >= 64) return SIZE_MAX;
  const std::size_t per_reg = (std::size_t{1} << ways) / 8;
  if (per_reg != 0 && num_regs > SIZE_MAX / per_reg) return SIZE_MAX;
  // Sub-byte registers (ways < 3) still occupy at least a word each.
  return num_regs * std::max<std::size_t>(per_reg, 8);
}

std::unique_ptr<QatBackend> make_qat_backend(Backend kind, unsigned ways,
                                             unsigned num_regs,
                                             unsigned chunk_ways) {
  switch (kind) {
    case Backend::kDense:
      return std::make_unique<DenseQatBackend>(ways, num_regs);
    case Backend::kCompressed:
      return std::make_unique<ReQatBackend>(ways, num_regs, chunk_ways);
  }
  throw std::invalid_argument("make_qat_backend: unknown backend");
}

std::unique_ptr<QatBackend> deserialize_qat_backend(ByteReader& r) {
  switch (r.u8()) {
    case kSnapshotDense:
      return DenseQatBackend::deserialize(r);
    case kSnapshotRe:
      return ReQatBackend::deserialize(r);
    default:
      throw std::runtime_error("deserialize_qat_backend: unknown kind byte");
  }
}

}  // namespace pbp
