// simd.cpp — runtime-dispatched vector kernels for the dense Qat substrate.
//
// Three tiers share one scalar reference semantics:
//   * scalar  — the historical word loops, kept verbatim as ground truth;
//   * AVX2    — 256-bit bitwise blocks (4 words per op);
//   * AVX-512 — 512-bit blocks (8 words per op) plus VPOPCNTQ-based SECDED
//     encode: check bit i is parity(word & mask[i]) over the seven GF(2)
//     parity masks, and the overall bit is parity(word) ^ parity(hamming),
//     evaluated for 8 words at once.  When the CPU additionally has GFNI +
//     AVX512VBMI, the encode collapses further to one VPERMB + one
//     VGF2P8AFFINEQB (see the GFNI section below) — a runtime refinement
//     inside the same tier.
//
// The per-tier variants carry GCC/Clang target attributes, so no global
// -march flags are needed and the binary still runs on machines without the
// extensions (dispatch never selects a tier the CPU lacks).  AVX2 has no
// 64-bit vector popcount, so its SECDED paths keep the table-driven scalar
// encode and only vectorize the payload arithmetic.
#include "pbp/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "pbp/ecc.hpp"

#if defined(__x86_64__) && defined(TANGLED_SIMD_X86)
#define TANGLED_SIMD_DISPATCH 1
#include <immintrin.h>
#else
#define TANGLED_SIMD_DISPATCH 0
#endif

namespace pbp::simd {

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "?";
}

Tier parse_tier(const std::string& s) {
  if (s == "scalar") return Tier::kScalar;
  if (s == "avx2") return Tier::kAvx2;
  if (s == "avx512") return Tier::kAvx512;
  throw std::invalid_argument("bad SIMD tier '" + s +
                              "' (want scalar|avx2|avx512)");
}

Tier best_supported() {
#if TANGLED_SIMD_DISPATCH
  static const Tier best = [] {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512vpopcntdq")) {
      return Tier::kAvx512;
    }
    if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
    return Tier::kScalar;
  }();
  return best;
#else
  return Tier::kScalar;
#endif
}

namespace {

std::atomic<Tier>& active_slot() {
  static std::atomic<Tier> tier = [] {
    Tier t = best_supported();
    if (const char* env = std::getenv("TANGLED_SIMD")) {
      try {
        const Tier want = parse_tier(env);
        if (want < t) t = want;  // the override can only lower the tier
      } catch (const std::invalid_argument&) {
        // An unparseable override falls back to autodetection.
      }
    }
    return t;
  }();
  return tier;
}

}  // namespace

Tier active() { return active_slot().load(std::memory_order_relaxed); }

bool set_tier(Tier t) {
  if (t > best_supported()) return false;
  active_slot().store(t, std::memory_order_relaxed);
  return true;
}

bool gfni_supported() {
#if TANGLED_SIMD_DISPATCH
  static const bool ok = best_supported() == Tier::kAvx512 &&
                         __builtin_cpu_supports("gfni") &&
                         __builtin_cpu_supports("avx512vbmi");
  return ok;
#else
  return false;
#endif
}

namespace {

std::atomic<bool>& gfni_slot() {
  static std::atomic<bool> on{gfni_supported()};
  return on;
}

}  // namespace

bool gfni_active() { return gfni_slot().load(std::memory_order_relaxed); }

bool set_gfni(bool on) {
  if (on && !gfni_supported()) return false;
  gfni_slot().store(on, std::memory_order_relaxed);
  return true;
}

// ---------------------------------------------------------------------------
// Scalar reference kernels (ground truth for every other tier).

namespace {

void and_inplace_scalar(std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] &= b[i];
}

void or_inplace_scalar(std::uint64_t* a, const std::uint64_t* b,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] |= b[i];
}

void xor_inplace_scalar(std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] ^= b[i];
}

void and3_scalar(std::uint64_t* a, const std::uint64_t* b,
                 const std::uint64_t* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] = b[i] & c[i];
}

void or3_scalar(std::uint64_t* a, const std::uint64_t* b,
                const std::uint64_t* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] = b[i] | c[i];
}

void xor3_scalar(std::uint64_t* a, const std::uint64_t* b,
                 const std::uint64_t* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] = b[i] ^ c[i];
}

void ccnot_scalar(std::uint64_t* a, const std::uint64_t* b,
                  const std::uint64_t* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] ^= b[i] & c[i];
}

void cswap_scalar(std::uint64_t* a, std::uint64_t* b, const std::uint64_t* c,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t t = (a[i] ^ b[i]) & c[i];
    a[i] ^= t;
    b[i] ^= t;
  }
}

std::size_t popcount_scalar(const std::uint64_t* a, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += static_cast<std::size_t>(__builtin_popcountll(a[i]));
  }
  return count;
}

std::size_t first_nonzero_scalar(const std::uint64_t* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != 0) return i;
  }
  return n;
}

bool all_ones_scalar(const std::uint64_t* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != ~std::uint64_t{0}) return false;
  }
  return true;
}

void secded64_encode_scalar(const std::uint64_t* words, std::uint8_t* checks,
                            std::size_t n) {
  // encode(0) == 0, and bulk encodes run over mostly-zero state: skip the
  // table lookups for zeros.
  for (std::size_t i = 0; i < n; ++i) {
    checks[i] = words[i] == 0 ? 0 : secded64_encode_fast(words[i]);
  }
}

std::uint64_t secded64_mismatch_mask_scalar(const std::uint64_t* words,
                                            const std::uint8_t* checks,
                                            std::size_t n) {
  // All-zero payload + check is clean (encode(0) == 0), and zeroed state
  // dominates whole-file sweeps: OR-fold first — a branchless, vectorizable
  // pass — and probe word-by-word only when the block holds any set bit.
  std::uint64_t fold = 0;
  for (std::size_t i = 0; i < n; ++i) fold |= words[i] | checks[i];
  if (fold == 0) return 0;
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (secded64_encode_fast(words[i]) != checks[i]) {
      mask |= std::uint64_t{1} << i;
    }
  }
  return mask;
}

void cnot_ecc_scalar(std::uint64_t* wa, const std::uint64_t* wb,
                     std::uint8_t* ca, const std::uint8_t* cb,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    wa[i] ^= wb[i];
    ca[i] ^= cb[i];
  }
}

void ccnot_ecc_scalar(std::uint64_t* wa, const std::uint64_t* wb,
                      const std::uint64_t* wc, std::uint8_t* ca,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t m = wb[i] & wc[i];
    wa[i] ^= m;
    ca[i] ^= secded64_encode_fast(m);
  }
}

void cswap_ecc_scalar(std::uint64_t* wa, std::uint64_t* wb,
                      const std::uint64_t* wc, std::uint8_t* ca,
                      std::uint8_t* cb, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t t = (wa[i] ^ wb[i]) & wc[i];
    wa[i] ^= t;
    wb[i] ^= t;
    const std::uint8_t d = secded64_encode_fast(t);
    ca[i] ^= d;
    cb[i] ^= d;
  }
}

void and3_ecc_scalar(std::uint64_t* wa, const std::uint64_t* wb,
                     const std::uint64_t* wc, std::uint8_t* ca,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = wb[i] & wc[i];
    wa[i] = r;
    ca[i] = secded64_encode_fast(r);
  }
}

void or3_ecc_scalar(std::uint64_t* wa, const std::uint64_t* wb,
                    const std::uint64_t* wc, std::uint8_t* ca,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = wb[i] | wc[i];
    wa[i] = r;
    ca[i] = secded64_encode_fast(r);
  }
}

void xor3_ecc_scalar(std::uint64_t* wa, const std::uint64_t* wb,
                     const std::uint64_t* wc, std::uint8_t* ca,
                     const std::uint8_t* cb, const std::uint8_t* cc,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    wa[i] = wb[i] ^ wc[i];
    ca[i] = static_cast<std::uint8_t>(cb[i] ^ cc[i]);
  }
}

#if TANGLED_SIMD_DISPATCH

// ---------------------------------------------------------------------------
// AVX2 tier: 256-bit bitwise blocks.  No 64-bit vector popcount exists at
// this tier, so the SECDED-fused kernels vectorize only their payload halves
// and keep the table-driven scalar encode.

#define TANGLED_TARGET_AVX2 __attribute__((target("avx2")))

TANGLED_TARGET_AVX2
void and_inplace_avx2(std::uint64_t* a, const std::uint64_t* b,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) a[i] &= b[i];
}

TANGLED_TARGET_AVX2
void or_inplace_avx2(std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < n; ++i) a[i] |= b[i];
}

TANGLED_TARGET_AVX2
void xor_inplace_avx2(std::uint64_t* a, const std::uint64_t* b,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_xor_si256(va, vb));
  }
  for (; i < n; ++i) a[i] ^= b[i];
}

TANGLED_TARGET_AVX2
void and3_avx2(std::uint64_t* a, const std::uint64_t* b,
               const std::uint64_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_and_si256(vb, vc));
  }
  for (; i < n; ++i) a[i] = b[i] & c[i];
}

TANGLED_TARGET_AVX2
void or3_avx2(std::uint64_t* a, const std::uint64_t* b,
              const std::uint64_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_or_si256(vb, vc));
  }
  for (; i < n; ++i) a[i] = b[i] | c[i];
}

TANGLED_TARGET_AVX2
void xor3_avx2(std::uint64_t* a, const std::uint64_t* b,
               const std::uint64_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_xor_si256(vb, vc));
  }
  for (; i < n; ++i) a[i] = b[i] ^ c[i];
}

TANGLED_TARGET_AVX2
void ccnot_avx2(std::uint64_t* a, const std::uint64_t* b,
                const std::uint64_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_xor_si256(va, _mm256_and_si256(vb, vc)));
  }
  for (; i < n; ++i) a[i] ^= b[i] & c[i];
}

TANGLED_TARGET_AVX2
void cswap_avx2(std::uint64_t* a, std::uint64_t* b, const std::uint64_t* c,
                std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<__m256i*>(b + i));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    const __m256i t =
        _mm256_and_si256(_mm256_xor_si256(va, vb), vc);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_xor_si256(va, t));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(b + i),
                        _mm256_xor_si256(vb, t));
  }
  for (; i < n; ++i) {
    const std::uint64_t t = (a[i] ^ b[i]) & c[i];
    a[i] ^= t;
    b[i] ^= t;
  }
}

TANGLED_TARGET_AVX2
std::size_t first_nonzero_avx2(const std::uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    if (!_mm256_testz_si256(v, v)) break;  // some word in this block is set
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return i;
  }
  return n;
}

TANGLED_TARGET_AVX2
bool all_ones_avx2(const std::uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    // testc(v, ones): CF set iff (~v & ones) == 0, i.e. v is all-ones.
    if (!_mm256_testc_si256(v, ones)) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != ~std::uint64_t{0}) return false;
  }
  return true;
}

TANGLED_TARGET_AVX2
void cnot_ecc_avx2(std::uint64_t* wa, const std::uint64_t* wb,
                   std::uint8_t* ca, const std::uint8_t* cb, std::size_t n) {
  xor_inplace_avx2(wa, wb, n);
  // The check bytes are fully linear too; the compiler vectorizes this
  // byte-wide XOR on its own.
  for (std::size_t i = 0; i < n; ++i) ca[i] ^= cb[i];
}

TANGLED_TARGET_AVX2
void xor3_ecc_avx2(std::uint64_t* wa, const std::uint64_t* wb,
                   const std::uint64_t* wc, std::uint8_t* ca,
                   const std::uint8_t* cb, const std::uint8_t* cc,
                   std::size_t n) {
  xor3_avx2(wa, wb, wc, n);
  for (std::size_t i = 0; i < n; ++i) ca[i] = cb[i] ^ cc[i];
}

#define TANGLED_AVX2_ECC_FALLBACK(call) call

// ---------------------------------------------------------------------------
// AVX-512 tier: 512-bit blocks plus VPOPCNTQ SECDED encode.

#define TANGLED_TARGET_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512vl,avx512vpopcntdq")))

// GCC's AVX-512 narrowing/reduction intrinsics expand through
// _mm512_undefined_epi32(), which GCC 12 flags as used-uninitialized when
// inlined into callers (PR105593).  The lanes in question are fully
// overwritten; silence the false positive for the AVX-512 kernels only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

TANGLED_TARGET_AVX512
void and_inplace_avx512(std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(a + i, _mm512_and_si512(va, vb));
  }
  for (; i < n; ++i) a[i] &= b[i];
}

TANGLED_TARGET_AVX512
void or_inplace_avx512(std::uint64_t* a, const std::uint64_t* b,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(a + i, _mm512_or_si512(va, vb));
  }
  for (; i < n; ++i) a[i] |= b[i];
}

TANGLED_TARGET_AVX512
void xor_inplace_avx512(std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(a + i, _mm512_xor_si512(va, vb));
  }
  for (; i < n; ++i) a[i] ^= b[i];
}

TANGLED_TARGET_AVX512
void and3_avx512(std::uint64_t* a, const std::uint64_t* b,
                 const std::uint64_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(a + i,
                        _mm512_and_si512(_mm512_loadu_si512(b + i),
                                         _mm512_loadu_si512(c + i)));
  }
  for (; i < n; ++i) a[i] = b[i] & c[i];
}

TANGLED_TARGET_AVX512
void or3_avx512(std::uint64_t* a, const std::uint64_t* b,
                const std::uint64_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(a + i,
                        _mm512_or_si512(_mm512_loadu_si512(b + i),
                                        _mm512_loadu_si512(c + i)));
  }
  for (; i < n; ++i) a[i] = b[i] | c[i];
}

TANGLED_TARGET_AVX512
void xor3_avx512(std::uint64_t* a, const std::uint64_t* b,
                 const std::uint64_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(a + i,
                        _mm512_xor_si512(_mm512_loadu_si512(b + i),
                                         _mm512_loadu_si512(c + i)));
  }
  for (; i < n; ++i) a[i] = b[i] ^ c[i];
}

TANGLED_TARGET_AVX512
void ccnot_avx512(std::uint64_t* a, const std::uint64_t* b,
                  const std::uint64_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i m = _mm512_and_si512(_mm512_loadu_si512(b + i),
                                       _mm512_loadu_si512(c + i));
    _mm512_storeu_si512(a + i, _mm512_xor_si512(va, m));
  }
  for (; i < n; ++i) a[i] ^= b[i] & c[i];
}

TANGLED_TARGET_AVX512
void cswap_avx512(std::uint64_t* a, std::uint64_t* b, const std::uint64_t* c,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    const __m512i t = _mm512_and_si512(_mm512_xor_si512(va, vb),
                                       _mm512_loadu_si512(c + i));
    _mm512_storeu_si512(a + i, _mm512_xor_si512(va, t));
    _mm512_storeu_si512(b + i, _mm512_xor_si512(vb, t));
  }
  for (; i < n; ++i) {
    const std::uint64_t t = (a[i] ^ b[i]) & c[i];
    a[i] ^= t;
    b[i] ^= t;
  }
}

TANGLED_TARGET_AVX512
std::size_t popcount_avx512(const std::uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  __m512i acc = _mm512_setzero_si512();
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(a + i)));
  }
  std::size_t count =
      static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    count += static_cast<std::size_t>(__builtin_popcountll(a[i]));
  }
  return count;
}

TANGLED_TARGET_AVX512
std::size_t first_nonzero_avx512(const std::uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_loadu_si512(a + i);
    const __mmask8 m = _mm512_test_epi64_mask(v, v);
    if (m != 0) {
      return i + static_cast<std::size_t>(__builtin_ctz(m));
    }
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return i;
  }
  return n;
}

TANGLED_TARGET_AVX512
bool all_ones_avx512(const std::uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  const __m512i ones = _mm512_set1_epi64(-1);
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_loadu_si512(a + i);
    if (_mm512_cmpneq_epi64_mask(v, ones) != 0) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != ~std::uint64_t{0}) return false;
  }
  return true;
}

/// Canonical (72,64) check bytes of 8 payload words, one per 64-bit lane:
/// Hamming bit i = parity(word & mask[i]) via VPOPCNTQ, overall bit =
/// parity(word) ^ parity(hamming bits).  Identical to secded64_encode_fast
/// by construction (same masks, pinned by tests/test_simd.cpp).
TANGLED_TARGET_AVX512
inline __m512i secded64_encode8(__m512i w) {
  const __m512i one = _mm512_set1_epi64(1);
  __m512i h = _mm512_setzero_si512();
  for (int i = 0; i < 7; ++i) {
    const __m512i masked = _mm512_and_si512(
        w, _mm512_set1_epi64(
               static_cast<long long>(detail::kSecded64Masks.m[i])));
    const __m512i parity =
        _mm512_and_si512(_mm512_popcnt_epi64(masked), one);
    h = _mm512_or_si512(h, _mm512_slli_epi64(parity, i));
  }
  const __m512i pw = _mm512_and_si512(_mm512_popcnt_epi64(w), one);
  const __m512i ph = _mm512_and_si512(_mm512_popcnt_epi64(h), one);
  return _mm512_or_si512(
      h, _mm512_slli_epi64(_mm512_xor_si512(pw, ph), 7));
}

/// Narrow 8 check-byte lanes to 8 packed bytes.
TANGLED_TARGET_AVX512
inline __m128i narrow_checks(__m512i enc) { return _mm512_cvtepi64_epi8(enc); }

TANGLED_TARGET_AVX512
inline void store8_checks(std::uint8_t* c, __m128i bytes) {
  _mm_storel_epi64(reinterpret_cast<__m128i*>(c), bytes);
}

TANGLED_TARGET_AVX512
void cnot_ecc_avx512(std::uint64_t* wa, const std::uint64_t* wb,
                     std::uint8_t* ca, const std::uint8_t* cb,
                     std::size_t n) {
  xor_inplace_avx512(wa, wb, n);
  for (std::size_t i = 0; i < n; ++i) ca[i] ^= cb[i];
}

TANGLED_TARGET_AVX512
void xor3_ecc_avx512(std::uint64_t* wa, const std::uint64_t* wb,
                     const std::uint64_t* wc, std::uint8_t* ca,
                     const std::uint8_t* cb, const std::uint8_t* cc,
                     std::size_t n) {
  xor3_avx512(wa, wb, wc, n);
  for (std::size_t i = 0; i < n; ++i) {
    ca[i] = static_cast<std::uint8_t>(cb[i] ^ cc[i]);
  }
}

// ---------------------------------------------------------------------------
// GFNI refinement of the AVX-512 tier.
//
// The full (72,64) check byte is one GF(2)-linear map: check bit i of word w
// is parity(w & R[i]) for eight 64-bit row masks R (the seven Hamming masks
// plus the folded overall-parity row).  Split each row into its eight bytes
// and that map factors into eight 8x8 bit-matrix products — exactly what
// VGF2P8AFFINEQB evaluates, one per byte lane.  So eight words encode with
//
//   1 VPERMB          byte-transpose: lane j gathers byte j of every word
//   1 VGF2P8AFFINEQB  lane j multiplies its bytes by the byte-j column matrix
//   3 XOR folds       512 -> 64 bits: byte q of the fold is check(word q)
//
// against the nine VPOPCNTQ sweeps (~45 512-bit ops) of the portable path.
// Selected at runtime inside Tier::kAvx512 when the CPU also has GFNI and
// AVX512VBMI (Ice Lake and later); set_gfni() pins either variant for tests.

#define TANGLED_TARGET_AVX512GF                                         \
  __attribute__((target(                                                \
      "avx512f,avx512bw,avx512vl,avx512vpopcntdq,avx512vbmi,gfni")))

struct Secded64GfniTables {
  alignas(64) std::uint8_t transpose[64];  // VPERMB byte-transpose index
  alignas(64) std::uint64_t matrices[8];   // per-lane 8x8 GF(2) matrices
};

constexpr Secded64GfniTables make_secded64_gfni_tables() {
  Secded64GfniTables t{};
  // Byte-transpose the 8x8 (lane x byte) grid: destination byte 8j+q reads
  // source byte 8q+j, so lane j collects byte j of all eight words.
  for (int j = 0; j < 8; ++j) {
    for (int q = 0; q < 8; ++q) {
      t.transpose[8 * j + q] = static_cast<std::uint8_t>(8 * q + j);
    }
  }
  // Row masks of the 8x64 check matrix.  Rows 0..6 are the Hamming parity
  // masks; row 7 is the overall bit, parity(w) ^ parity(hamming(w)) ==
  // parity(w & ~(m0 ^ ... ^ m6)).
  std::uint64_t rows[8] = {};
  std::uint64_t fold = 0;
  for (int i = 0; i < 7; ++i) {
    rows[i] = detail::kSecded64Masks.m[i];
    fold ^= rows[i];
  }
  rows[7] = ~fold;
  // VGF2P8AFFINEQB reads the matrix row for output bit i from byte 7-i of
  // the lane's matrix qword; lane j multiplies byte j of each word, so its
  // matrix holds byte j of every row.
  for (int j = 0; j < 8; ++j) {
    std::uint64_t m = 0;
    for (int k = 0; k < 8; ++k) {
      m |= ((rows[7 - k] >> (8 * j)) & 0xff) << (8 * k);
    }
    t.matrices[j] = m;
  }
  return t;
}

constexpr Secded64GfniTables kSecded64Gfni = make_secded64_gfni_tables();

/// Canonical check bytes of 8 payload words via one affine transform; the
/// low 8 bytes of the result are checks[0..7].  Bit-identical to
/// secded64_encode8 + narrow_checks (pinned by tests/test_simd.cpp).
TANGLED_TARGET_AVX512GF
inline __m128i secded64_encode8_gfni(__m512i w) {
  const __m512i t = _mm512_permutexvar_epi8(
      _mm512_load_si512(kSecded64Gfni.transpose), w);
  const __m512i y = _mm512_gf2p8affine_epi64_epi8(
      t, _mm512_load_si512(kSecded64Gfni.matrices), 0);
  const __m256i f = _mm256_xor_si256(_mm512_castsi512_si256(y),
                                     _mm512_extracti64x4_epi64(y, 1));
  const __m128i g = _mm_xor_si128(_mm256_castsi256_si128(f),
                                  _mm256_extracti128_si256(f, 1));
  return _mm_xor_si128(g, _mm_unpackhi_epi64(g, g));
}

// Instantiate the six encode-bearing SECDED kernels twice from one shared
// body (see simd_secded_kernels.inc): the portable popcount variant and the
// GFNI variant differ only in the ENC8 hook.

#define TANGLED_SECDED_TARGET TANGLED_TARGET_AVX512
#define TANGLED_SECDED_FN(name) name##_avx512
#define TANGLED_SECDED_ENC8(v) narrow_checks(secded64_encode8(v))
#include "simd_secded_kernels.inc"
#undef TANGLED_SECDED_TARGET
#undef TANGLED_SECDED_FN
#undef TANGLED_SECDED_ENC8

#define TANGLED_SECDED_TARGET TANGLED_TARGET_AVX512GF
#define TANGLED_SECDED_FN(name) name##_gfni
#define TANGLED_SECDED_ENC8(v) secded64_encode8_gfni(v)
#include "simd_secded_kernels.inc"
#undef TANGLED_SECDED_TARGET
#undef TANGLED_SECDED_FN
#undef TANGLED_SECDED_ENC8

#pragma GCC diagnostic pop

#endif  // TANGLED_SIMD_DISPATCH

}  // namespace

// ---------------------------------------------------------------------------
// Public dispatchers.  The per-call switch is negligible against the word
// loops it guards; ops on tiny registers (ways < 9) spend their time in the
// virtual-call plumbing either way.

#if TANGLED_SIMD_DISPATCH
#define TANGLED_DISPATCH(fn, ...)                      \
  switch (active()) {                                  \
    case Tier::kAvx512:                                \
      return fn##_avx512(__VA_ARGS__);                 \
    case Tier::kAvx2:                                  \
      return fn##_avx2(__VA_ARGS__);                   \
    case Tier::kScalar:                                \
      break;                                           \
  }                                                    \
  return fn##_scalar(__VA_ARGS__)
// AVX2 has no vector popcount / SECDED path: fall through to scalar there.
#define TANGLED_DISPATCH_512(fn, ...)                  \
  switch (active()) {                                  \
    case Tier::kAvx512:                                \
      return fn##_avx512(__VA_ARGS__);                 \
    case Tier::kAvx2:                                  \
    case Tier::kScalar:                                \
      break;                                           \
  }                                                    \
  return fn##_scalar(__VA_ARGS__)
// Encode-bearing SECDED kernels additionally refine kAvx512 with the GFNI
// variant when the CPU has it (see secded64_encode8_gfni).
#define TANGLED_DISPATCH_512GF(fn, ...)                \
  switch (active()) {                                  \
    case Tier::kAvx512:                                \
      if (gfni_active()) return fn##_gfni(__VA_ARGS__); \
      return fn##_avx512(__VA_ARGS__);                 \
    case Tier::kAvx2:                                  \
    case Tier::kScalar:                                \
      break;                                           \
  }                                                    \
  return fn##_scalar(__VA_ARGS__)
#else
#define TANGLED_DISPATCH(fn, ...) return fn##_scalar(__VA_ARGS__)
#define TANGLED_DISPATCH_512(fn, ...) return fn##_scalar(__VA_ARGS__)
#define TANGLED_DISPATCH_512GF(fn, ...) return fn##_scalar(__VA_ARGS__)
#endif

void and_inplace(std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  TANGLED_DISPATCH(and_inplace, a, b, n);
}

void or_inplace(std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  TANGLED_DISPATCH(or_inplace, a, b, n);
}

void xor_inplace(std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  TANGLED_DISPATCH(xor_inplace, a, b, n);
}

void and3(std::uint64_t* a, const std::uint64_t* b, const std::uint64_t* c,
          std::size_t n) {
  TANGLED_DISPATCH(and3, a, b, c, n);
}

void or3(std::uint64_t* a, const std::uint64_t* b, const std::uint64_t* c,
         std::size_t n) {
  TANGLED_DISPATCH(or3, a, b, c, n);
}

void xor3(std::uint64_t* a, const std::uint64_t* b, const std::uint64_t* c,
          std::size_t n) {
  TANGLED_DISPATCH(xor3, a, b, c, n);
}

void ccnot(std::uint64_t* a, const std::uint64_t* b, const std::uint64_t* c,
           std::size_t n) {
  TANGLED_DISPATCH(ccnot, a, b, c, n);
}

void cswap(std::uint64_t* a, std::uint64_t* b, const std::uint64_t* c,
           std::size_t n) {
  TANGLED_DISPATCH(cswap, a, b, c, n);
}

std::size_t popcount(const std::uint64_t* a, std::size_t n) {
  TANGLED_DISPATCH_512(popcount, a, n);
}

std::size_t first_nonzero(const std::uint64_t* a, std::size_t n) {
  TANGLED_DISPATCH(first_nonzero, a, n);
}

bool all_ones(const std::uint64_t* a, std::size_t n) {
  TANGLED_DISPATCH(all_ones, a, n);
}

void secded64_encode(const std::uint64_t* words, std::uint8_t* checks,
                     std::size_t n) {
  TANGLED_DISPATCH_512GF(secded64_encode, words, checks, n);
}

std::uint64_t secded64_mismatch_mask(const std::uint64_t* words,
                                     const std::uint8_t* checks,
                                     std::size_t n) {
  TANGLED_DISPATCH_512GF(secded64_mismatch_mask, words, checks, n);
}

void cnot_ecc(std::uint64_t* wa, const std::uint64_t* wb, std::uint8_t* ca,
              const std::uint8_t* cb, std::size_t n) {
  TANGLED_DISPATCH(cnot_ecc, wa, wb, ca, cb, n);
}

void ccnot_ecc(std::uint64_t* wa, const std::uint64_t* wb,
               const std::uint64_t* wc, std::uint8_t* ca, std::size_t n) {
  TANGLED_DISPATCH_512GF(ccnot_ecc, wa, wb, wc, ca, n);
}

void cswap_ecc(std::uint64_t* wa, std::uint64_t* wb, const std::uint64_t* wc,
               std::uint8_t* ca, std::uint8_t* cb, std::size_t n) {
  TANGLED_DISPATCH_512GF(cswap_ecc, wa, wb, wc, ca, cb, n);
}

void and3_ecc(std::uint64_t* wa, const std::uint64_t* wb,
              const std::uint64_t* wc, std::uint8_t* ca, std::size_t n) {
  TANGLED_DISPATCH_512GF(and3_ecc, wa, wb, wc, ca, n);
}

void or3_ecc(std::uint64_t* wa, const std::uint64_t* wb,
             const std::uint64_t* wc, std::uint8_t* ca, std::size_t n) {
  TANGLED_DISPATCH_512GF(or3_ecc, wa, wb, wc, ca, n);
}

void xor3_ecc(std::uint64_t* wa, const std::uint64_t* wb,
              const std::uint64_t* wc, std::uint8_t* ca,
              const std::uint8_t* cb, const std::uint8_t* cc,
              std::size_t n) {
  TANGLED_DISPATCH(xor3_ecc, wa, wb, wc, ca, cb, cc, n);
}

#undef TANGLED_DISPATCH
#undef TANGLED_DISPATCH_512

}  // namespace pbp::simd
