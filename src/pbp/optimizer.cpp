#include "pbp/optimizer.hpp"

namespace pbp {
namespace {

bool is_zero(const Circuit& c, Circuit::Node n) {
  return c.gate(n).kind == GateKind::kZero;
}
bool is_one(const Circuit& c, Circuit::Node n) {
  return c.gate(n).kind == GateKind::kOne;
}
bool is_not(const Circuit& c, Circuit::Node n) {
  return c.gate(n).kind == GateKind::kNot;
}
/// True when a and b are structural complements (one is NOT of the other).
bool complements(const Circuit& c, Circuit::Node a, Circuit::Node b) {
  return (is_not(c, a) && c.gate(a).a == b) ||
         (is_not(c, b) && c.gate(b).a == a);
}

}  // namespace

namespace {

OptimizeResult optimize_once(const Circuit& in,
                             std::span<const Circuit::Node> roots,
                             const OptimizeOptions& opts) {
  using Node = Circuit::Node;
  const std::size_t n = in.node_count();

  // Mark the cone of the roots (dead-gate elimination falls out of only
  // rebuilding marked nodes).
  std::vector<bool> live(n, false);
  {
    std::vector<Node> stack(roots.begin(), roots.end());
    while (!stack.empty()) {
      const Node x = stack.back();
      stack.pop_back();
      if (live[x]) continue;
      live[x] = true;
      const auto& g = in.gate(x);
      switch (g.kind) {
        case GateKind::kNot:
          stack.push_back(g.a);
          break;
        case GateKind::kAnd:
        case GateKind::kOr:
        case GateKind::kXor:
          stack.push_back(g.a);
          stack.push_back(g.b);
          break;
        default:
          break;
      }
    }
  }

  OptimizeResult out{Circuit(in.context(), opts.cse), {}, {}};
  out.stats.gates_before = n;
  Circuit& c = out.circuit;

  auto fold = [&](auto make) -> Node {
    // Track CSE hits: push returning an already-existing node leaves the
    // node count unchanged.
    const std::size_t before = c.node_count();
    const Node r = make();
    if (c.node_count() == before) ++out.stats.cse_hits;
    return r;
  };

  std::vector<Node> map(n, 0);
  for (Node i = 0; i < n; ++i) {
    if (!live[i]) continue;
    const auto& g = in.gate(i);
    switch (g.kind) {
      case GateKind::kZero:
        map[i] = fold([&] { return c.zero(); });
        break;
      case GateKind::kOne:
        map[i] = fold([&] { return c.one(); });
        break;
      case GateKind::kHad:
        if (opts.fold_constants && g.k >= c.ways()) {
          // had @a,k with k >= WAYS writes all zeros (Figure 7 semantics).
          ++out.stats.folds;
          map[i] = fold([&] { return c.zero(); });
        } else {
          map[i] = fold([&] { return c.had(g.k); });
        }
        break;
      case GateKind::kNot: {
        const Node a = map[g.a];
        if (opts.simplify_not && is_not(c, a)) {
          ++out.stats.folds;
          map[i] = c.gate(a).a;  // ~~x = x
        } else if (opts.fold_constants && is_zero(c, a)) {
          ++out.stats.folds;
          map[i] = fold([&] { return c.one(); });
        } else if (opts.fold_constants && is_one(c, a)) {
          ++out.stats.folds;
          map[i] = fold([&] { return c.zero(); });
        } else {
          map[i] = fold([&] { return c.g_not(a); });
        }
        break;
      }
      case GateKind::kAnd: {
        const Node a = map[g.a];
        const Node b = map[g.b];
        if (opts.fold_constants &&
            (is_zero(c, a) || is_zero(c, b) || complements(c, a, b))) {
          ++out.stats.folds;
          map[i] = fold([&] { return c.zero(); });
        } else if (opts.fold_constants && is_one(c, a)) {
          ++out.stats.folds;
          map[i] = b;
        } else if (opts.fold_constants && (is_one(c, b) || a == b)) {
          ++out.stats.folds;
          map[i] = a;
        } else {
          map[i] = fold([&] { return c.g_and(a, b); });
        }
        break;
      }
      case GateKind::kOr: {
        const Node a = map[g.a];
        const Node b = map[g.b];
        if (opts.fold_constants &&
            (is_one(c, a) || is_one(c, b) || complements(c, a, b))) {
          ++out.stats.folds;
          map[i] = fold([&] { return c.one(); });
        } else if (opts.fold_constants && is_zero(c, a)) {
          ++out.stats.folds;
          map[i] = b;
        } else if (opts.fold_constants && (is_zero(c, b) || a == b)) {
          ++out.stats.folds;
          map[i] = a;
        } else {
          map[i] = fold([&] { return c.g_or(a, b); });
        }
        break;
      }
      case GateKind::kXor: {
        const Node a = map[g.a];
        const Node b = map[g.b];
        if (opts.fold_constants && a == b) {
          ++out.stats.folds;
          map[i] = fold([&] { return c.zero(); });
        } else if (opts.fold_constants && complements(c, a, b)) {
          ++out.stats.folds;
          map[i] = fold([&] { return c.one(); });
        } else if (opts.fold_constants && is_zero(c, a)) {
          ++out.stats.folds;
          map[i] = b;
        } else if (opts.fold_constants && is_zero(c, b)) {
          ++out.stats.folds;
          map[i] = a;
        } else if (opts.simplify_not && is_one(c, a)) {
          ++out.stats.folds;
          map[i] = fold([&] { return c.g_not(b); });
        } else if (opts.simplify_not && is_one(c, b)) {
          ++out.stats.folds;
          map[i] = fold([&] { return c.g_not(a); });
        } else {
          map[i] = fold([&] { return c.g_xor(a, b); });
        }
        break;
      }
    }
  }

  out.roots.reserve(roots.size());
  for (const Node root : roots) out.roots.push_back(map[root]);
  out.stats.gates_after = c.node_count();
  return out;
}

}  // namespace

OptimizeResult optimize(const Circuit& in,
                        std::span<const Circuit::Node> roots,
                        const OptimizeOptions& opts) {
  // A simplification can orphan its operands (e.g. ~~x = x leaves the inner
  // NOT dead), so iterate to a fixpoint; each pass strictly shrinks or stops.
  OptimizeResult r = optimize_once(in, roots, opts);
  const std::size_t original = r.stats.gates_before;
  while (r.stats.gates_after < r.stats.gates_before || r.stats.folds > 0) {
    OptimizeResult next = optimize_once(r.circuit, r.roots, opts);
    if (next.stats.gates_after == r.stats.gates_after &&
        next.stats.folds == 0) {
      break;
    }
    next.stats.folds += r.stats.folds;
    next.stats.cse_hits += r.stats.cse_hits;
    r = std::move(next);
  }
  r.stats.gates_before = original;
  return r;
}

}  // namespace pbp
