// pbit.hpp — a pattern bit (pbit): one E-way entangled superposed bit value,
// stored either densely (Aob) or compressed (Re), with a uniform gate and
// measurement interface (paper §1, §2.7).
//
// The hardware Qat coprocessor only ever holds dense AoBs; the RE backend is
// the software layer the paper assumes for entanglement beyond 16 ways
// (§1.2), where each 65,536-bit AoB becomes one RE symbol.  PbpContext fixes
// the ways and backend for a family of pbits so mixed-representation bugs
// are impossible by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <variant>

#include "pbp/aob.hpp"
#include "pbp/re.hpp"

namespace pbp {

enum class Backend : std::uint8_t {
  kDense,       // raw Aob, exactly what Qat hardware registers hold
  kCompressed,  // RLE-of-chunks Re, the software scaling path
};

class Pbit;

/// Shared configuration for a family of entangled pbits.
class PbpContext : public std::enable_shared_from_this<PbpContext> {
 public:
  /// chunk_ways only matters for the compressed backend; the LCPC'20
  /// prototype's 4096-bit chunks correspond to chunk_ways = 12.
  static std::shared_ptr<PbpContext> create(unsigned ways,
                                            Backend backend = Backend::kDense,
                                            unsigned chunk_ways = 12);

  unsigned ways() const { return ways_; }
  Backend backend() const { return backend_; }
  const std::shared_ptr<ChunkPool>& pool() const { return pool_; }

  Pbit zero();
  Pbit one();
  Pbit hadamard(unsigned k);
  Pbit from_aob(const Aob& a);

 private:
  PbpContext(unsigned ways, Backend backend, unsigned chunk_ways);

  unsigned ways_;
  Backend backend_;
  std::shared_ptr<ChunkPool> pool_;  // null for the dense backend
};

/// One entangled superposed bit.  Value-semantic; copying is O(size) dense
/// and O(runs) compressed.
class Pbit {
 public:
  unsigned ways() const;
  std::size_t bit_count() const { return std::size_t{1} << ways(); }

  // --- Channel-wise gates (Table 3 semantics). ---
  Pbit operator&(const Pbit& o) const;
  Pbit operator|(const Pbit& o) const;
  Pbit operator^(const Pbit& o) const;
  Pbit operator~() const;
  Pbit and_not(const Pbit& o) const;

  /// In-place reversible gates, matching the Qat instruction forms.
  void pauli_x();                              // not @a
  void cnot(const Pbit& control);              // @a ^= control
  void ccnot(const Pbit& c1, const Pbit& c2);  // @a ^= c1 & c2 (Toffoli)
  static void swap_values(Pbit& a, Pbit& b) noexcept;
  static void cswap(Pbit& a, Pbit& b, const Pbit& control);  // Fredkin

  // --- Non-destructive measurement family (§2.7). ---
  bool meas(std::size_t channel) const;                       // meas $d,@a
  std::optional<std::size_t> next_one(std::size_t ch) const;  // next $d,@a
  std::size_t pop_after(std::size_t ch) const;                // pop extension
  std::size_t popcount() const;                               // true POP
  bool any() const;
  bool all() const;

  bool operator==(const Pbit& o) const;

  /// Dense view (decompresses if needed; requires small enough ways).
  Aob to_aob() const;

  /// Compressed-size metric; equals dense size for the dense backend.
  std::size_t storage_bytes() const;

 private:
  friend class PbpContext;
  explicit Pbit(Aob a) : v_(std::move(a)) {}
  explicit Pbit(Re r) : v_(std::move(r)) {}

  void apply(BitOp op, const Pbit& o);

  std::variant<Aob, Re> v_;
};

}  // namespace pbp
