#include "pbp/circuit.hpp"

#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace pbp {
namespace {

std::uint64_t gate_hash(const Circuit::Gate& g) {
  std::uint64_t h = static_cast<std::uint64_t>(g.kind);
  h = h * 0x9e3779b97f4a7c15ull + g.a;
  h = h * 0x9e3779b97f4a7c15ull + g.b;
  h = h * 0x9e3779b97f4a7c15ull + g.k;
  return h;
}

bool gate_equal(const Circuit::Gate& x, const Circuit::Gate& y) {
  return x.kind == y.kind && x.a == y.a && x.b == y.b && x.k == y.k;
}

}  // namespace

const char* gate_kind_name(GateKind k) {
  switch (k) {
    case GateKind::kZero:
      return "zero";
    case GateKind::kOne:
      return "one";
    case GateKind::kHad:
      return "had";
    case GateKind::kNot:
      return "not";
    case GateKind::kAnd:
      return "and";
    case GateKind::kOr:
      return "or";
    case GateKind::kXor:
      return "xor";
  }
  return "?";
}

Circuit::Circuit(std::shared_ptr<PbpContext> ctx, bool hash_cons)
    : ctx_(std::move(ctx)), hash_cons_(hash_cons) {
  if (!ctx_) throw std::invalid_argument("Circuit: null context");
}

std::optional<Circuit::Node> Circuit::find_consed(const Gate& g) const {
  if (!hash_cons_) return std::nullopt;
  const std::uint64_t h = gate_hash(g);
  auto [lo, hi] = cons_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (gate_equal(gates_[it->second], g)) return it->second;
  }
  return std::nullopt;
}

Circuit::Node Circuit::push(Gate g) {
  // Canonicalize commutative operand order so hash-consing sees a&b == b&a.
  if ((g.kind == GateKind::kAnd || g.kind == GateKind::kOr ||
       g.kind == GateKind::kXor) &&
      g.a > g.b) {
    std::swap(g.a, g.b);
  }
  if (auto n = find_consed(g)) return *n;
  if (gates_.size() >= std::numeric_limits<Node>::max()) {
    throw std::runtime_error("Circuit: node limit exceeded");
  }
  const Node n = static_cast<Node>(gates_.size());
  gates_.push_back(g);
  values_.emplace_back();
  if (hash_cons_) cons_.emplace(gate_hash(g), n);
  return n;
}

Circuit::Node Circuit::zero() { return push({GateKind::kZero, 0, 0, 0}); }
Circuit::Node Circuit::one() { return push({GateKind::kOne, 0, 0, 0}); }

Circuit::Node Circuit::had(unsigned k) {
  return push({GateKind::kHad, 0, 0, static_cast<std::uint16_t>(k)});
}

Circuit::Node Circuit::g_not(Node a) { return push({GateKind::kNot, a, 0, 0}); }

Circuit::Node Circuit::g_and(Node a, Node b) {
  return push({GateKind::kAnd, a, b, 0});
}

Circuit::Node Circuit::g_or(Node a, Node b) {
  return push({GateKind::kOr, a, b, 0});
}

Circuit::Node Circuit::g_xor(Node a, Node b) {
  return push({GateKind::kXor, a, b, 0});
}

Circuit::Node Circuit::g_mux(Node sel, Node t, Node f) {
  return g_or(g_and(t, sel), g_and(f, g_not(sel)));
}

const Pbit& Circuit::eval(Node n) {
  if (values_[n]) return *values_[n];
  // Two passes keep evaluation iterative (no recursion on DAG depth) and
  // proportional to n's input cone: mark the cone, then evaluate marked
  // nodes in index order (operands are always lower-numbered).
  std::vector<Node> stack{n};
  std::vector<bool> in_cone(n + 1, false);
  while (!stack.empty()) {
    const Node x = stack.back();
    stack.pop_back();
    if (in_cone[x] || values_[x]) continue;
    in_cone[x] = true;
    const Gate& gx = gates_[x];
    if (gx.kind == GateKind::kNot) stack.push_back(gx.a);
    if (gx.kind == GateKind::kAnd || gx.kind == GateKind::kOr ||
        gx.kind == GateKind::kXor) {
      stack.push_back(gx.a);
      stack.push_back(gx.b);
    }
  }
  for (Node i = 0; i <= n; ++i) {
    if (!in_cone[i] || values_[i]) continue;
    const Gate& gi = gates_[i];
    ++evals_;
    switch (gi.kind) {
      case GateKind::kZero:
        values_[i] = ctx_->zero();
        break;
      case GateKind::kOne:
        values_[i] = ctx_->one();
        break;
      case GateKind::kHad:
        values_[i] = ctx_->hadamard(gi.k);
        break;
      case GateKind::kNot:
        values_[i] = ~*values_[gi.a];
        break;
      case GateKind::kAnd:
        values_[i] = *values_[gi.a] & *values_[gi.b];
        break;
      case GateKind::kOr:
        values_[i] = *values_[gi.a] | *values_[gi.b];
        break;
      case GateKind::kXor:
        values_[i] = *values_[gi.a] ^ *values_[gi.b];
        break;
    }
  }
  return *values_[n];
}

void Circuit::clear_values() {
  for (auto& v : values_) v.reset();
}

// ---------------------------------------------------------------------------
// Qat assembly emission.

EmitResult emit_qat(const Circuit& c, std::span<const Circuit::Node> roots,
                    const EmitOptions& opts) {
  using Node = Circuit::Node;
  constexpr std::size_t kLive = std::numeric_limits<std::size_t>::max();

  const std::size_t n = c.node_count();
  std::vector<bool> needed(n, false);
  {
    std::vector<Node> stack(roots.begin(), roots.end());
    while (!stack.empty()) {
      const Node x = stack.back();
      stack.pop_back();
      if (needed[x]) continue;
      needed[x] = true;
      const auto& g = c.gate(x);
      switch (g.kind) {
        case GateKind::kNot:
          stack.push_back(g.a);
          break;
        case GateKind::kAnd:
        case GateKind::kOr:
        case GateKind::kXor:
          stack.push_back(g.a);
          stack.push_back(g.b);
          break;
        default:
          break;
      }
    }
  }

  // Last use per node (node index of the highest user; kLive for roots).
  std::vector<std::size_t> last_use(n, 0);
  for (Node i = 0; i < n; ++i) {
    if (!needed[i]) continue;
    const auto& g = c.gate(i);
    switch (g.kind) {
      case GateKind::kNot:
        last_use[g.a] = i;
        break;
      case GateKind::kAnd:
      case GateKind::kOr:
      case GateKind::kXor:
        last_use[g.a] = i;
        last_use[g.b] = i;
        break;
      default:
        break;
    }
  }
  for (const Node r : roots) last_use[r] = kLive;

  const unsigned ways = c.ways();
  const unsigned first_free =
      opts.constant_registers ? 2 + ways : 0;  // @0,@1,@H0..@H(ways-1)

  EmitResult out;
  std::vector<int> reg(n, -1);
  std::vector<unsigned> free_regs;
  unsigned next_reg = first_free;
  unsigned high_water = first_free;

  auto alloc_reg = [&]() -> unsigned {
    if (opts.alloc == EmitOptions::RegAlloc::kLinearScan && !free_regs.empty()) {
      const unsigned r = free_regs.back();
      free_regs.pop_back();
      return r;
    }
    if (next_reg >= opts.max_registers) {
      throw std::runtime_error(
          "emit_qat: out of Qat registers (" +
          std::to_string(opts.max_registers) +
          "); try EmitOptions::RegAlloc::kLinearScan");
    }
    const unsigned r = next_reg++;
    if (r + 1 > high_water) high_water = r + 1;
    return r;
  };

  auto release_operand = [&](Node op, Node user) {
    if (opts.alloc != EmitOptions::RegAlloc::kLinearScan) return;
    if (last_use[op] != user) return;
    if (reg[op] >= 0 && static_cast<unsigned>(reg[op]) >= first_free) {
      free_regs.push_back(static_cast<unsigned>(reg[op]));
      reg[op] = -1;
    }
  };

  auto emit = [&](const std::string& line) {
    out.asm_text += '\t';
    out.asm_text += line;
    out.asm_text += '\n';
    ++out.instruction_count;
  };
  auto r = [](int x) {
    std::string s = "@";
    s += std::to_string(x);
    return s;
  };

  for (Node i = 0; i < n; ++i) {
    if (!needed[i]) continue;
    const auto& g = c.gate(i);
    switch (g.kind) {
      case GateKind::kZero:
        if (opts.constant_registers) {
          reg[i] = 0;
        } else {
          reg[i] = static_cast<int>(alloc_reg());
          emit("zero " + r(reg[i]));
        }
        break;
      case GateKind::kOne:
        if (opts.constant_registers) {
          reg[i] = 1;
        } else {
          reg[i] = static_cast<int>(alloc_reg());
          emit("one " + r(reg[i]));
        }
        break;
      case GateKind::kHad:
        if (opts.constant_registers && g.k < ways) {
          reg[i] = static_cast<int>(2 + g.k);
        } else {
          reg[i] = static_cast<int>(alloc_reg());
          emit("had " + r(reg[i]) + "," + std::to_string(g.k));
        }
        break;
      case GateKind::kNot: {
        const int ra = reg[g.a];
        const bool in_place = opts.alloc == EmitOptions::RegAlloc::kLinearScan &&
                              last_use[g.a] == i &&
                              static_cast<unsigned>(ra) >= first_free;
        if (in_place) {
          // The operand dies here: invert it where it sits.
          reg[i] = ra;
          reg[g.a] = -1;
          emit("not " + r(reg[i]));
        } else {
          // Paper idiom (§4.2): copy with a self-OR, then invert the copy so
          // the original operand value survives.
          release_operand(g.a, i);
          reg[i] = static_cast<int>(alloc_reg());
          emit("or " + r(reg[i]) + "," + r(ra) + "," + r(ra));
          emit("not " + r(reg[i]));
        }
        break;
      }
      case GateKind::kAnd:
      case GateKind::kOr:
      case GateKind::kXor: {
        const int ra = reg[g.a];
        const int rb = reg[g.b];
        release_operand(g.a, i);
        if (g.b != g.a) release_operand(g.b, i);
        reg[i] = static_cast<int>(alloc_reg());
        emit(std::string(gate_kind_name(g.kind)) + " " + r(reg[i]) + "," +
             r(ra) + "," + r(rb));
        break;
      }
    }
  }

  out.root_regs.reserve(roots.size());
  for (const Node root : roots) {
    out.root_regs.push_back(static_cast<std::uint8_t>(reg[root]));
  }
  out.registers_used = high_water;
  return out;
}

}  // namespace pbp
