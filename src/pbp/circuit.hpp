// circuit.hpp — gate-level circuit recording over pbits, with Qat assembly
// emission (paper §4.2).
//
// The LCPC'20 software-only PBP prototype was "slightly modified to output
// the gate-level operations rather than to perform them"; that is exactly
// this module's job.  Word-level pint operations (pint.hpp) build a DAG of
// gates here; the DAG can be lazily *evaluated* (each node producing a Pbit),
// *optimized* (optimizer.hpp), and *emitted* as Tangled/Qat assembly text in
// the style of Figure 10, with either the paper's greedy one-register-per-
// gate allocation or a register-reusing linear scan.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "pbp/pbit.hpp"

namespace pbp {

enum class GateKind : std::uint8_t { kZero, kOne, kHad, kNot, kAnd, kOr, kXor };

/// Name of the Qat instruction implementing a gate kind (for emission).
const char* gate_kind_name(GateKind k);

/// A DAG of channel-wise gate operations.  Nodes are append-only and always
/// topologically ordered (operands precede users).
class Circuit {
 public:
  using Node = std::uint32_t;

  struct Gate {
    GateKind kind;
    Node a = 0;          // first operand (kNot/kAnd/kOr/kXor)
    Node b = 0;          // second operand (kAnd/kOr/kXor)
    std::uint16_t k = 0; // Hadamard index (kHad)
  };

  /// hash_cons = false reproduces the paper's behaviour (every requested gate
  /// becomes an instruction, duplicates included, as in Figure 10);
  /// hash_cons = true deduplicates structurally identical gates at build
  /// time, i.e. free common-subexpression elimination.
  explicit Circuit(std::shared_ptr<PbpContext> ctx, bool hash_cons = false);

  const std::shared_ptr<PbpContext>& context() const { return ctx_; }
  unsigned ways() const { return ctx_->ways(); }

  // --- Builders. ---
  Node zero();
  Node one();
  Node had(unsigned k);
  Node g_not(Node a);
  Node g_and(Node a, Node b);
  Node g_or(Node a, Node b);
  Node g_xor(Node a, Node b);
  /// Derived: NOT(XOR) — equality of two pbits per channel.
  Node g_xnor(Node a, Node b) { return g_not(g_xor(a, b)); }
  /// Derived 2:1 mux: sel ? t : f, built from and/or/not.
  Node g_mux(Node sel, Node t, Node f);

  std::size_t node_count() const { return gates_.size(); }
  const Gate& gate(Node n) const { return gates_[n]; }

  // --- Lazy evaluation: compute the Pbit value of a node (memoized). ---
  const Pbit& eval(Node n);
  /// Number of gate evaluations actually performed (memo misses).
  std::uint64_t evals_performed() const { return evals_; }
  /// Drop all cached values (e.g. after measuring storage).
  void clear_values();

  // --- Non-destructive measurement on a node's value (§2.7). ---
  bool meas(Node n, std::size_t ch) { return eval(n).meas(ch); }
  std::optional<std::size_t> next(Node n, std::size_t ch) {
    return eval(n).next_one(ch);
  }
  std::size_t pop_after(Node n, std::size_t ch) {
    return eval(n).pop_after(ch);
  }
  std::size_t popcount(Node n) { return eval(n).popcount(); }
  bool any(Node n) { return eval(n).any(); }
  bool all(Node n) { return eval(n).all(); }

 private:
  std::optional<Node> find_consed(const Gate& g) const;
  Node push(Gate g);

  std::shared_ptr<PbpContext> ctx_;
  bool hash_cons_;
  std::vector<Gate> gates_;
  std::vector<std::optional<Pbit>> values_;
  std::unordered_multimap<std::uint64_t, Node> cons_;  // gate hash -> node
  std::uint64_t evals_ = 0;
};

/// Qat assembly emission options.
struct EmitOptions {
  enum class RegAlloc {
    kGreedy,      // paper style: a fresh register per gate, §4.2
    kLinearScan,  // reuse registers after last use
  };
  RegAlloc alloc = RegAlloc::kGreedy;
  /// §5 simplification: assume @0=0, @1=1, @2..@(2+WAYS-1)=H(0..WAYS-1) are
  /// reserved constant registers, so zero/one/had emit no instructions.
  bool constant_registers = false;
  unsigned max_registers = 256;  // Qat has @0..@255
};

struct EmitResult {
  std::string asm_text;
  /// Qat register where each requested root value ends up.
  std::vector<std::uint8_t> root_regs;
  unsigned registers_used = 0;
  std::size_t instruction_count = 0;
};

/// Emit Qat assembly computing every node in `roots`.  Throws
/// std::runtime_error if the allocation strategy runs out of registers.
EmitResult emit_qat(const Circuit& c, std::span<const Circuit::Node> roots,
                    const EmitOptions& opts = {});

}  // namespace pbp
