// hadamard.hpp — the Qat `had` initializer patterns (paper §2.3, Figure 7).
//
// `had @a,k` loads the k-th "standard" entangled superposition: channel e of
// the result is bit k of the binary representation of e, i.e. a repeating
// run of 2^k zeros followed by 2^k ones.  Three implementation models are
// provided, mirroring the three hardware structures the paper discusses:
//
//  * hadamard_generate — the parametric generator of Figure 7 (per-channel
//    combinatorial function), word-optimized here.
//  * HadamardLut — the student solution: a pre-built table of all WAYS
//    constants selected by a multiplexor (a `case` statement in Verilog).
//  * HadamardRegisterFile — the §5 simplification: reserve constant-valued
//    registers @H0..@H(WAYS-1) plus the 0 and 1 constants, making `zero`,
//    `one` and `had` plain register copies.
//
// All three must agree bit-for-bit; tests/test_hadamard.cpp cross-checks them.
#pragma once

#include <cstddef>
#include <vector>

#include "pbp/aob.hpp"

namespace pbp {

/// Reference single-channel definition: bit k of channel index e.
constexpr bool hadamard_bit(unsigned k, std::size_t e) {
  return (e >> k) & 1u;
}

/// Figure 7 generator, word-parallel: for k < 6 each 64-bit word repeats a
/// fixed sub-pattern; for k >= 6 whole words alternate in 2^(k-6)-word blocks.
Aob hadamard_generate(unsigned ways, unsigned k);

/// The "lookup table expressed as a combinatorial case statement" model:
/// all WAYS patterns are built once, `select(k)` is the multiplexor.
class HadamardLut {
 public:
  explicit HadamardLut(unsigned ways);
  unsigned ways() const { return ways_; }
  /// Out-of-range k selects the all-zero default case, matching Figure 7's
  /// generator semantics ((e >> k) & 1 == 0 for every channel).
  const Aob& select(unsigned k) const {
    return k < ways_ ? table_[k] : zero_;
  }

 private:
  unsigned ways_;
  std::vector<Aob> table_;
  Aob zero_;
};

/// The §5 constant-register-file model: @0 = 0, @1 = 1, @2 = H(0), @3 = H(1),
/// ... matching the layout the paper recommends (and the LCPC'20 software
/// prototype used).
class HadamardRegisterFile {
 public:
  explicit HadamardRegisterFile(unsigned ways);
  unsigned ways() const { return ways_; }
  std::size_t size() const { return regs_.size(); }
  const Aob& zero() const { return regs_[0]; }
  const Aob& one() const { return regs_[1]; }
  const Aob& h(unsigned k) const { return regs_[2 + (k % ways_)]; }
  /// Raw indexed access (register-file read port).
  const Aob& reg(std::size_t i) const { return regs_[i % regs_.size()]; }

 private:
  unsigned ways_;
  std::vector<Aob> regs_;
};

}  // namespace pbp
