#include "pbp/aob.hpp"

#include <bit>
#include <stdexcept>

#include "pbp/simd.hpp"

namespace pbp {
namespace {

constexpr std::size_t kWordBits = 64;

std::size_t mask_ch(unsigned ways, std::size_t ch) {
  return ch & ((std::size_t{1} << ways) - 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// bitview — the raw-word kernels both Aob and the dense slab backend run.

namespace bitview {

std::size_t words_for(unsigned ways) {
  const std::size_t bits = std::size_t{1} << ways;
  return (bits + kWordBits - 1) / kWordBits;
}

bool get(const std::uint64_t* w, unsigned ways, std::size_t ch) {
  ch = mask_ch(ways, ch);
  return (w[ch / kWordBits] >> (ch % kWordBits)) & 1u;
}

void set(std::uint64_t* w, unsigned ways, std::size_t ch, bool v) {
  ch = mask_ch(ways, ch);
  const std::uint64_t bit = std::uint64_t{1} << (ch % kWordBits);
  if (v) {
    w[ch / kWordBits] |= bit;
  } else {
    w[ch / kWordBits] &= ~bit;
  }
}

void fill_ones(std::uint64_t* w, std::size_t n, unsigned ways) {
  const std::size_t bits = std::size_t{1} << ways;
  for (std::size_t i = 0; i < n; ++i) w[i] = ~std::uint64_t{0};
  if (bits < kWordBits) w[0] = (std::uint64_t{1} << bits) - 1;
}

void invert(std::uint64_t* w, std::size_t n, unsigned ways) {
  const std::size_t bits = std::size_t{1} << ways;
  for (std::size_t i = 0; i < n; ++i) w[i] = ~w[i];
  if (bits < kWordBits) w[0] &= (std::uint64_t{1} << bits) - 1;
}

std::size_t popcount(const std::uint64_t* w, std::size_t n) {
  return simd::popcount(w, n);
}

std::size_t popcount_after(const std::uint64_t* w, std::size_t n,
                           unsigned ways, std::size_t ch) {
  ch = mask_ch(ways, ch);
  const std::size_t bits = std::size_t{1} << ways;
  const std::size_t start = ch + 1;  // strictly after
  if (start >= bits) return 0;
  const std::size_t wi = start / kWordBits;
  const std::size_t bi = start % kWordBits;
  std::size_t count = static_cast<std::size_t>(
      std::popcount(w[wi] & (~std::uint64_t{0} << bi)));
  return count + simd::popcount(w + wi + 1, n - wi - 1);
}

std::optional<std::size_t> next_one(const std::uint64_t* w, std::size_t n,
                                    unsigned ways, std::size_t ch) {
  ch = mask_ch(ways, ch);
  const std::size_t bits = std::size_t{1} << ways;
  const std::size_t start = ch + 1;
  if (start >= bits) return std::nullopt;
  std::size_t wi = start / kWordBits;
  const std::size_t bi = start % kWordBits;
  std::uint64_t word = w[wi] & (~std::uint64_t{0} << bi);
  if (word == 0) {
    // Skip ahead over the zero run with the vector scan.
    const std::size_t rest = simd::first_nonzero(w + wi + 1, n - wi - 1);
    if (wi + 1 + rest == n) return std::nullopt;
    wi += 1 + rest;
    word = w[wi];
  }
  const std::size_t pos =
      wi * kWordBits + static_cast<std::size_t>(std::countr_zero(word));
  return pos < bits ? std::optional<std::size_t>{pos} : std::nullopt;
}

bool any(const std::uint64_t* w, std::size_t n) {
  return simd::first_nonzero(w, n) != n;
}

bool all(const std::uint64_t* w, std::size_t n, unsigned ways) {
  const std::size_t bits = std::size_t{1} << ways;
  if (bits < kWordBits) return w[0] == (std::uint64_t{1} << bits) - 1;
  return simd::all_ones(w, n);
}

std::uint64_t hash(const std::uint64_t* w, std::size_t n) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= w[i];
    h *= 0x100000001b3ull;
    h ^= h >> 32;
  }
  return h;
}

std::string to_string(const std::uint64_t* w, unsigned ways,
                      std::size_t max_bits) {
  const std::size_t n = std::size_t{1} << ways;
  std::string s;
  const std::size_t shown = n < max_bits ? n : max_bits;
  s.reserve(shown + 3);
  for (std::size_t e = 0; e < shown; ++e) {
    s.push_back(get(w, ways, e) ? '1' : '0');
  }
  if (shown < n) s += "...";
  return s;
}

}  // namespace bitview

// ---------------------------------------------------------------------------
// Aob — a thin owner over the bitview kernels.

Aob::Aob(unsigned ways) : ways_(ways) {
  if (ways > kMaxAobWays) {
    throw std::invalid_argument("Aob: ways " + std::to_string(ways) +
                                " exceeds dense-representation limit " +
                                std::to_string(kMaxAobWays));
  }
  w_.assign(bitview::words_for(ways), 0);
}

Aob Aob::zeros(unsigned ways) { return Aob(ways); }

Aob Aob::ones(unsigned ways) {
  Aob a(ways);
  bitview::fill_ones(a.w_.data(), a.w_.size(), ways);
  return a;
}

bool Aob::get(std::size_t ch) const {
  return bitview::get(w_.data(), ways_, ch);
}

void Aob::set(std::size_t ch, bool v) {
  bitview::set(w_.data(), ways_, ch, v);
}

void Aob::check_compatible(const Aob& o) const {
  if (ways_ != o.ways_) {
    throw std::invalid_argument("Aob: mixing " + std::to_string(ways_) +
                                "-way and " + std::to_string(o.ways_) +
                                "-way values");
  }
}

Aob& Aob::operator&=(const Aob& o) {
  check_compatible(o);
  simd::and_inplace(w_.data(), o.w_.data(), w_.size());
  return *this;
}

Aob& Aob::operator|=(const Aob& o) {
  check_compatible(o);
  simd::or_inplace(w_.data(), o.w_.data(), w_.size());
  return *this;
}

Aob& Aob::operator^=(const Aob& o) {
  check_compatible(o);
  simd::xor_inplace(w_.data(), o.w_.data(), w_.size());
  return *this;
}

void Aob::invert() { bitview::invert(w_.data(), w_.size(), ways_); }

Aob Aob::operator~() const {
  Aob r = *this;
  r.invert();
  return r;
}

void Aob::cswap(Aob& a, Aob& b, const Aob& c) {
  a.check_compatible(b);
  a.check_compatible(c);
  // Channel-wise conditional exchange via the classic XOR-mask trick:
  // t has a 1 exactly where a and b differ AND the control is 1.
  simd::cswap(a.w_.data(), b.w_.data(), c.w_.data(), a.w_.size());
}

void Aob::swap_values(Aob& a, Aob& b) noexcept {
  a.w_.swap(b.w_);
  std::swap(a.ways_, b.ways_);
}

std::size_t Aob::popcount() const {
  return bitview::popcount(w_.data(), w_.size());
}

std::size_t Aob::popcount_after(std::size_t ch) const {
  return bitview::popcount_after(w_.data(), w_.size(), ways_, ch);
}

std::optional<std::size_t> Aob::next_one(std::size_t ch) const {
  return bitview::next_one(w_.data(), w_.size(), ways_, ch);
}

bool Aob::any() const { return bitview::any(w_.data(), w_.size()); }

bool Aob::all() const { return bitview::all(w_.data(), w_.size(), ways_); }

bool Aob::operator==(const Aob& o) const {
  return ways_ == o.ways_ && w_ == o.w_;
}

std::uint64_t Aob::hash() const noexcept {
  return bitview::hash(w_.data(), w_.size());
}

std::string Aob::to_string(std::size_t max_bits) const {
  return bitview::to_string(w_.data(), ways_, max_bits);
}

}  // namespace pbp
