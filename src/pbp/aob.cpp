#include "pbp/aob.hpp"

#include <bit>
#include <stdexcept>

#include "pbp/simd.hpp"

namespace pbp {
namespace {

constexpr std::size_t kWordBits = 64;

// Number of storage words for 2^ways bits (at least one, for ways < 6).
std::size_t words_for(unsigned ways) {
  const std::size_t bits = std::size_t{1} << ways;
  return (bits + kWordBits - 1) / kWordBits;
}

}  // namespace

Aob::Aob(unsigned ways) : ways_(ways) {
  if (ways > kMaxAobWays) {
    throw std::invalid_argument("Aob: ways " + std::to_string(ways) +
                                " exceeds dense-representation limit " +
                                std::to_string(kMaxAobWays));
  }
  w_.assign(words_for(ways), 0);
}

Aob Aob::zeros(unsigned ways) { return Aob(ways); }

Aob Aob::ones(unsigned ways) {
  Aob a(ways);
  const std::size_t bits = a.bit_count();
  for (auto& w : a.w_) w = ~std::uint64_t{0};
  if (bits < kWordBits) a.w_[0] = (std::uint64_t{1} << bits) - 1;
  return a;
}

bool Aob::get(std::size_t ch) const {
  ch = mask_channel(ch);
  return (w_[ch / kWordBits] >> (ch % kWordBits)) & 1u;
}

void Aob::set(std::size_t ch, bool v) {
  ch = mask_channel(ch);
  const std::uint64_t bit = std::uint64_t{1} << (ch % kWordBits);
  if (v) {
    w_[ch / kWordBits] |= bit;
  } else {
    w_[ch / kWordBits] &= ~bit;
  }
}

void Aob::check_compatible(const Aob& o) const {
  if (ways_ != o.ways_) {
    throw std::invalid_argument("Aob: mixing " + std::to_string(ways_) +
                                "-way and " + std::to_string(o.ways_) +
                                "-way values");
  }
}

Aob& Aob::operator&=(const Aob& o) {
  check_compatible(o);
  simd::and_inplace(w_.data(), o.w_.data(), w_.size());
  return *this;
}

Aob& Aob::operator|=(const Aob& o) {
  check_compatible(o);
  simd::or_inplace(w_.data(), o.w_.data(), w_.size());
  return *this;
}

Aob& Aob::operator^=(const Aob& o) {
  check_compatible(o);
  simd::xor_inplace(w_.data(), o.w_.data(), w_.size());
  return *this;
}

void Aob::invert() {
  for (auto& w : w_) w = ~w;
  const std::size_t bits = bit_count();
  if (bits < kWordBits) w_[0] &= (std::uint64_t{1} << bits) - 1;
}

Aob Aob::operator~() const {
  Aob r = *this;
  r.invert();
  return r;
}

void Aob::cswap(Aob& a, Aob& b, const Aob& c) {
  a.check_compatible(b);
  a.check_compatible(c);
  // Channel-wise conditional exchange via the classic XOR-mask trick:
  // t has a 1 exactly where a and b differ AND the control is 1.
  simd::cswap(a.w_.data(), b.w_.data(), c.w_.data(), a.w_.size());
}

void Aob::swap_values(Aob& a, Aob& b) noexcept {
  a.w_.swap(b.w_);
  std::swap(a.ways_, b.ways_);
}

std::size_t Aob::popcount() const {
  return simd::popcount(w_.data(), w_.size());
}

std::size_t Aob::popcount_after(std::size_t ch) const {
  ch = mask_channel(ch);
  const std::size_t start = ch + 1;  // strictly after
  if (start >= bit_count()) return 0;
  const std::size_t wi = start / kWordBits;
  const std::size_t bi = start % kWordBits;
  std::size_t n = static_cast<std::size_t>(
      std::popcount(w_[wi] & (~std::uint64_t{0} << bi)));
  return n + simd::popcount(w_.data() + wi + 1, w_.size() - wi - 1);
}

std::optional<std::size_t> Aob::next_one(std::size_t ch) const {
  ch = mask_channel(ch);
  const std::size_t start = ch + 1;
  if (start >= bit_count()) return std::nullopt;
  std::size_t wi = start / kWordBits;
  const std::size_t bi = start % kWordBits;
  std::uint64_t w = w_[wi] & (~std::uint64_t{0} << bi);
  if (w == 0) {
    // Skip ahead over the zero run with the vector scan.
    const std::size_t rest =
        simd::first_nonzero(w_.data() + wi + 1, w_.size() - wi - 1);
    if (wi + 1 + rest == w_.size()) return std::nullopt;
    wi += 1 + rest;
    w = w_[wi];
  }
  const std::size_t pos =
      wi * kWordBits + static_cast<std::size_t>(std::countr_zero(w));
  return pos < bit_count() ? std::optional<std::size_t>{pos} : std::nullopt;
}

bool Aob::any() const {
  return simd::first_nonzero(w_.data(), w_.size()) != w_.size();
}

bool Aob::all() const {
  const std::size_t bits = bit_count();
  if (bits < kWordBits) return w_[0] == (std::uint64_t{1} << bits) - 1;
  return simd::all_ones(w_.data(), w_.size());
}

bool Aob::operator==(const Aob& o) const {
  return ways_ == o.ways_ && w_ == o.w_;
}

std::uint64_t Aob::hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto w : w_) {
    h ^= w;
    h *= 0x100000001b3ull;
    h ^= h >> 32;
  }
  return h;
}

std::string Aob::to_string(std::size_t max_bits) const {
  const std::size_t n = bit_count();
  std::string s;
  const std::size_t shown = n < max_bits ? n : max_bits;
  s.reserve(shown + 3);
  for (std::size_t e = 0; e < shown; ++e) s.push_back(get(e) ? '1' : '0');
  if (shown < n) s += "...";
  return s;
}

}  // namespace pbp
