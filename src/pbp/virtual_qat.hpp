// virtual_qat.hpp — the software Qat for entanglement beyond the hardware's
// 16 ways (paper §1.2, §5).
//
// "The PBP model does not suggest representing higher degrees of entangled
// superposition using AoB, but instead using regular expressions compressing
// patterns in which AoB representations are treated as individual symbols."
// VirtualQat is exactly that layer: the same register-file-plus-ALU surface
// as the hardware QatEngine (Table 3 + pop), realized by the shared
// ReQatBackend (qat_backend.hpp) — run-length-encoded chunks interned in a
// shared pool, chunk-level op memoization, copy-on-write register moves.
// chunk_ways = 16 makes every symbol one hardware-sized 65,536-bit AoB,
// i.e. this models software driving the real coprocessor chunk by chunk;
// smaller chunk sizes model pure-software deployments (the LCPC'20
// prototype used 4096-bit chunks).
//
// Channel arguments are std::size_t because a 16-bit Tangled register can no
// longer address all channels — the ISA-level consequence the paper's §5
// scaling discussion implies.
#pragma once

#include <cstdint>
#include <memory>

#include "pbp/qat_backend.hpp"
#include "pbp/re.hpp"

namespace pbp {

class VirtualQat {
 public:
  /// ways may exceed kMaxAobWays (registers are never materialized densely).
  VirtualQat(unsigned ways, unsigned chunk_ways = 12,
             unsigned num_regs = 256);

  unsigned ways() const { return impl_.ways(); }
  std::size_t channels() const { return impl_.channels(); }
  std::size_t num_regs() const { return impl_.num_regs(); }
  const std::shared_ptr<ChunkPool>& pool() const { return impl_.pool(); }

  const Re& reg(unsigned r) const { return impl_.re_reg(r); }

  // --- Table 3 operations ---
  void zero(unsigned a) { impl_.zero(a); }
  void one(unsigned a) { impl_.one(a); }
  void had(unsigned a, unsigned k) { impl_.had(a, k); }
  void not_(unsigned a) { impl_.not_(a); }
  void cnot(unsigned a, unsigned b) { impl_.cnot(a, b); }
  void ccnot(unsigned a, unsigned b, unsigned c) { impl_.ccnot(a, b, c); }
  void swap(unsigned a, unsigned b) { impl_.swap(a, b); }
  void cswap(unsigned a, unsigned b, unsigned c) { impl_.cswap(a, b, c); }
  void and_(unsigned a, unsigned b, unsigned c) { impl_.and_(a, b, c); }
  void or_(unsigned a, unsigned b, unsigned c) { impl_.or_(a, b, c); }
  void xor_(unsigned a, unsigned b, unsigned c) { impl_.xor_(a, b, c); }

  // --- Measurement family (§2.7), non-destructive ---
  bool meas(unsigned a, std::size_t ch) const { return impl_.meas(a, ch); }
  /// next: 0 aliases "none", matching the hardware ISA.
  std::size_t next(unsigned a, std::size_t ch) const {
    const auto r = impl_.next_one(a, ch);
    return r ? *r : 0;
  }
  std::size_t pop_after(unsigned a, std::size_t ch) const {
    return impl_.pop_after(a, ch);
  }
  std::size_t popcount(unsigned a) const { return impl_.popcount(a); }
  bool any(unsigned a) const { return impl_.any(a); }
  bool all(unsigned a) const { return impl_.all(a); }

  /// Total compressed bytes across all registers (storage metric).
  std::size_t storage_bytes() const { return impl_.storage_bytes(); }

  // --- Data integrity ---
  /// Protection policy for the shared chunk pool (every op on this engine
  /// verifies its operands' symbols on access).  Survives restore().
  void set_ecc_mode(EccMode m) { impl_.set_ecc_mode(m); }
  EccMode ecc_mode() const { return impl_.ecc_mode(); }
  /// Verification epoch (see QatBackend::set_ecc_epoch).  Survives
  /// restore(), like the mode — both are policy, not machine state.
  void set_ecc_epoch(std::uint64_t n) { impl_.set_ecc_epoch(n); }
  std::uint64_t ecc_epoch() const { return impl_.ecc_epoch(); }
  /// Advance the verification clock.
  void ecc_tick(std::uint64_t now) { impl_.ecc_tick(now); }
  /// Sweep every pool chunk; never throws (see QatBackend::scrub_ecc).
  EccSweep scrub_ecc() { return impl_.scrub_ecc(); }
  /// Drain the access-path verify tallies.
  EccSweep take_ecc_counts() { return impl_.take_ecc_counts(); }
  /// Storage-upset model: flip a raw stored bit under register r.
  void storage_upset(unsigned r, std::size_t ch) {
    impl_.storage_upset(r, ch);
  }
  std::size_t ecc_bytes() const { return impl_.ecc_bytes(); }

  // --- Fault tolerance ---
  /// Forced-exhaustion fault injection: cap the shared pool's symbol space.
  void set_symbol_cap(std::size_t n) { impl_.set_symbol_cap(n); }
  /// Snapshot / restore the whole register file (pool symbols + run lists).
  void save(ByteWriter& w) const { impl_.serialize(w); }
  /// Throws std::runtime_error on a malformed or mismatched snapshot.
  void restore(ByteReader& r);

 private:
  ReQatBackend impl_;
};

}  // namespace pbp
