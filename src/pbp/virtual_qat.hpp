// virtual_qat.hpp — the software Qat for entanglement beyond the hardware's
// 16 ways (paper §1.2, §5).
//
// "The PBP model does not suggest representing higher degrees of entangled
// superposition using AoB, but instead using regular expressions compressing
// patterns in which AoB representations are treated as individual symbols."
// VirtualQat is exactly that layer: the same register-file-plus-ALU surface
// as the hardware QatEngine (Table 3 + pop), but each register is an Re —
// run-length-encoded chunks interned in a shared pool, with chunk-level op
// memoization.  chunk_ways = 16 makes every symbol one hardware-sized
// 65,536-bit AoB, i.e. this models software driving the real coprocessor
// chunk by chunk; smaller chunk sizes model pure-software deployments (the
// LCPC'20 prototype used 4096-bit chunks).
//
// Channel arguments are std::size_t because a 16-bit Tangled register can no
// longer address all channels — the ISA-level consequence the paper's §5
// scaling discussion implies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pbp/re.hpp"

namespace pbp {

class VirtualQat {
 public:
  /// ways may exceed kMaxAobWays (registers are never materialized densely).
  VirtualQat(unsigned ways, unsigned chunk_ways = 12,
             unsigned num_regs = 256);

  unsigned ways() const { return ways_; }
  std::size_t channels() const { return std::size_t{1} << ways_; }
  std::size_t num_regs() const { return regs_.size(); }
  const std::shared_ptr<ChunkPool>& pool() const { return pool_; }

  const Re& reg(unsigned r) const { return regs_[r % regs_.size()]; }

  // --- Table 3 operations ---
  void zero(unsigned a);
  void one(unsigned a);
  void had(unsigned a, unsigned k);
  void not_(unsigned a);
  void cnot(unsigned a, unsigned b);
  void ccnot(unsigned a, unsigned b, unsigned c);
  void swap(unsigned a, unsigned b);
  void cswap(unsigned a, unsigned b, unsigned c);
  void and_(unsigned a, unsigned b, unsigned c);
  void or_(unsigned a, unsigned b, unsigned c);
  void xor_(unsigned a, unsigned b, unsigned c);

  // --- Measurement family (§2.7), non-destructive ---
  bool meas(unsigned a, std::size_t ch) const;
  /// next: 0 aliases "none", matching the hardware ISA.
  std::size_t next(unsigned a, std::size_t ch) const;
  std::size_t pop_after(unsigned a, std::size_t ch) const;
  std::size_t popcount(unsigned a) const;
  bool any(unsigned a) const;
  bool all(unsigned a) const;

  /// Total compressed bytes across all registers (storage metric).
  std::size_t storage_bytes() const;

 private:
  Re& rw(unsigned r) { return regs_[r % regs_.size()]; }

  unsigned ways_;
  std::shared_ptr<ChunkPool> pool_;
  std::vector<Re> regs_;
};

}  // namespace pbp
