// pint.hpp — pattern integers: multi-pbit words over a shared gate circuit
// (paper §4.1, Figure 9).
//
// A pint is an ordered vector of pbits (LSB first), each a node of one shared
// Circuit.  Word-level operations synthesize the corresponding gate networks
// channel-wise — a ripple-carry adder really is a per-channel ripple-carry
// adder evaluated simultaneously in all 2^E entanglement channels, which is
// how multiplying two Hadamard-initialized pints computes *every* product at
// once.  Measurement is non-destructive and returns the full distribution
// (the PBP advantage over quantum measurement, §2.7).
//
// The Figure 9 program maps directly:
//   pint a = pint_mk(4, 15)    → Pint::constant(c, 4, 15)
//   pint b = pint_h(4, 0x0f)   → Pint::hadamard(c, 4, 0x0f)
//   pint d = pint_mul(b, c)    → Pint::mul(b, c)
//   pint e = pint_eq(d, a)     → Pint::eq(d, a)
//   pint_measure(f)            → f.measure_values()
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "pbp/circuit.hpp"

namespace pbp {

class Pint {
 public:
  using Node = Circuit::Node;

  Pint(std::shared_ptr<Circuit> c, std::vector<Node> bits);

  /// pint_mk: a width-bit constant (every channel holds `value`).
  static Pint constant(std::shared_ptr<Circuit> c, unsigned width,
                       std::uint64_t value);

  /// pint_h: width-bit value whose i-th pbit is the Hadamard pattern of the
  /// i-th set bit of `channel_mask`.  Figure 9 uses pint_h(4,0x0f) for
  /// H(0..3) and pint_h(4,0xf0) for H(4..7), giving disjoint entanglement
  /// channels so that products are 8-way entangled.  The popcount of
  /// channel_mask must equal width.
  static Pint hadamard(std::shared_ptr<Circuit> c, unsigned width,
                       std::uint32_t channel_mask);

  unsigned width() const { return static_cast<unsigned>(bits_.size()); }
  Node bit(unsigned i) const { return bits_[i]; }
  const std::shared_ptr<Circuit>& circuit() const { return c_; }

  // --- Arithmetic (unsigned). ---
  /// Full-width sum: result is max(width)+1 bits (no overflow loss).
  static Pint add(const Pint& a, const Pint& b);
  /// Modular sum at max(width) bits (wraps).
  static Pint add_mod(const Pint& a, const Pint& b);
  /// a - b modulo 2^max(width) (two's complement).
  static Pint sub_mod(const Pint& a, const Pint& b);
  /// Full product: width(a)+width(b) bits — pint_mul of Figure 9.
  static Pint mul(const Pint& a, const Pint& b);

  /// Unsigned division by a nonzero constant, per channel, via restoring
  /// long division (one compare/subtract/select layer per dividend bit).
  /// Returns {quotient (width(a) bits), remainder (bit_width(divisor) bits)}.
  static std::pair<Pint, Pint> divmod_const(const Pint& a,
                                            std::uint64_t divisor);
  /// a mod m for constant m >= 1.
  static Pint mod_const(const Pint& a, std::uint64_t m);
  /// base^a mod m for constants base, m — the modular-exponentiation network
  /// at the heart of Shor-style period finding, evaluated in every channel
  /// at once (square-and-multiply with per-channel select on a's pbits).
  static Pint modexp_const(std::uint64_t base, const Pint& a,
                           std::uint64_t m);

  // --- Comparisons: produce a 1-pbit pint. ---
  static Pint eq(const Pint& a, const Pint& b);  // pint_eq of Figure 9
  static Pint ne(const Pint& a, const Pint& b);
  static Pint lt(const Pint& a, const Pint& b);  // unsigned a < b
  static Pint le(const Pint& a, const Pint& b);

  // --- Bitwise (zero-extending the narrower operand). ---
  friend Pint operator&(const Pint& a, const Pint& b);
  friend Pint operator|(const Pint& a, const Pint& b);
  friend Pint operator^(const Pint& a, const Pint& b);
  Pint operator~() const;

  /// Left shift by a constant (width grows by k).
  Pint shl(unsigned k) const;
  /// Left shift by a superposed amount: a log-depth barrel network (one mux
  /// layer per amount bit — the same structure as Figure 8's step-1 barrel
  /// shifter, here built from gates over pbits).  Result width is
  /// width() + 2^amount.width() - 1 so no channel's value is truncated.
  static Pint shl_var(const Pint& a, const Pint& amount);
  /// Truncate/zero-extend to exactly w bits.
  Pint resize(unsigned w) const;

  /// Per-channel conditional: cond must be 1 pbit wide.
  static Pint select(const Pint& cond, const Pint& then_v,
                     const Pint& else_v);

  /// Broadcast-AND with a single pbit (Figure 9's `pint_mul(e, b)` zeroing
  /// of non-factors is exactly this).
  static Pint gate_by(const Pint& a, const Pint& enable);

  // --- Non-destructive measurement. ---
  /// Full distribution: (value, channel count), sorted by value.  O(2^E · w).
  std::vector<std::pair<std::uint64_t, std::size_t>> measure_distribution()
      const;
  /// Distinct values present in the superposition — what pint_measure prints
  /// in Figure 9.
  std::vector<std::uint64_t> measure_values() const;
  /// The value encoded in one entanglement channel.
  std::uint64_t value_at_channel(std::size_t ch) const;
  /// Probability of `value` in parts per 2^E (a popcount per §2.7).
  std::size_t channels_equal_to(std::uint64_t value) const;

 private:
  static void align(const Pint& a, const Pint& b, std::vector<Node>& xa,
                    std::vector<Node>& xb);
  static std::shared_ptr<Circuit> same_circuit(const Pint& a, const Pint& b);

  std::shared_ptr<Circuit> c_;
  std::vector<Node> bits_;  // LSB first
};

}  // namespace pbp
