// sim_pool.hpp — a per-worker cache of warm simulators (the ISSUE 10
// tentpole's first leg).
//
// Constructing a simulator per job is the serve layer's fixed-cost floor:
// a 64Ki-word memory array, a 64Ki-entry coverage map, and a dense Qat
// slab are allocated and zeroed before a single instruction runs — ~100 µs
// of pure overhead on a trivial job.  The pool keeps one simulator per
// (SimKind, backend, ways) key and hands it back rewound to power-on state
// via reset(), which costs O(state actually dirtied by the previous job)
// instead of O(address space): the allocations — and their cache residency
// — survive across jobs.
//
// The hard contract (held by QatEngine::reset / Memory::reset /
// SimBase::reset and proven differentially by tests/test_sim_pool.cpp) is
// that a reset simulator is bit-identical to a freshly constructed one:
// same architectural state, same stats and ECC counters, same serialized
// Qat bytes, same trap behavior.  Pooling is therefore invisible to jobs.
//
// Each worker thread owns its own pool — acquire() is called from exactly
// one thread, so there is no locking on the hot path.  Hit/miss counters
// are relaxed atomics aggregated into the server's stats snapshot.
//
// Memory discipline: a cached simulator's footprint is NOT charged to the
// server's admission budget (its job's reservation was released when the
// job finished), so the pool refuses to cache simulators whose estimated
// footprint exceeds max_entry_bytes, and evicts least-recently-used
// entries past max_entries.  Oversized jobs simply fall back to cold
// construction — exactly the pre-pool behavior.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <utility>

#include "arch/qat_engine.hpp"
#include "pbp/qat_backend.hpp"
#include "serve/job.hpp"

namespace tangled::serve {

class SimulatorPool {
 public:
  /// `max_entries` caches at most that many simulators (0 disables the
  /// pool entirely: acquire always cold-constructs).  `max_entry_bytes`
  /// bounds the estimated footprint of any single cached simulator.
  explicit SimulatorPool(std::size_t max_entries,
                         std::size_t max_entry_bytes = std::size_t{8} << 20,
                         std::atomic<std::uint64_t>* hits = nullptr,
                         std::atomic<std::uint64_t>* misses = nullptr)
      : max_entries_(max_entries),
        max_entry_bytes_(max_entry_bytes),
        hits_(hits),
        misses_(misses) {}

  /// Return a simulator for (sim, backend, ways): a cached one rewound to
  /// power-on state, or a freshly made one (cached for next time when it
  /// fits).  `make` is only invoked on a miss and must return
  /// std::unique_ptr<SimT>.  The returned simulator stays owned by the
  /// pool (shared); the caller drops its reference when the job is done
  /// and the next acquire of the same key resets it.  Exceptions from
  /// `make` propagate (nothing is cached).
  template <typename SimT, typename Make>
  std::shared_ptr<SimT> acquire(SimKind sim, pbp::Backend backend,
                                unsigned ways, Make&& make) {
    const Key key{static_cast<std::uint8_t>(sim),
                  static_cast<std::uint8_t>(backend), ways};
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      it->second.last_use = ++tick_;
      // SimKind <-> concrete simulator type is a bijection (including the
      // PipelineSim configs, which get distinct SimKinds), so the erased
      // pointer under this key is always a SimT.
      auto s = std::static_pointer_cast<SimT>(it->second.sim);
      s->reset();
      bump(hits_);
      return s;
    }
    std::shared_ptr<SimT> s{std::forward<Make>(make)().release()};
    bump(misses_);
    if (max_entries_ == 0 || footprint(backend, ways) > max_entry_bytes_) {
      return s;  // too big to retain uncharged; run cold
    }
    if (cache_.size() >= max_entries_) evict_lru();
    cache_.emplace(key, Entry{s, ++tick_});
    return s;
  }

  std::size_t size() const { return cache_.size(); }

 private:
  struct Key {
    std::uint8_t sim;
    std::uint8_t backend;
    unsigned ways;
    bool operator<(const Key& o) const {
      return std::tie(sim, backend, ways) < std::tie(o.sim, o.backend, o.ways);
    }
  };
  struct Entry {
    std::shared_ptr<void> sim;
    std::uint64_t last_use = 0;
  };

  static void bump(std::atomic<std::uint64_t>* c) {
    if (c != nullptr) c->fetch_add(1, std::memory_order_relaxed);
  }

  /// Worst-case retained bytes: the dense slab plus its ECC sidecar (the
  /// sidecar vector keeps its capacity across reset) plus the fixed
  /// ~0.8 MiB of memory array + coverage map.  RE register files rebuild
  /// tiny private pools on reset, so only the fixed part counts.
  static std::size_t footprint(pbp::Backend backend, unsigned ways) {
    const std::size_t fixed = std::size_t{1} << 20;
    if (backend != pbp::Backend::kDense) return fixed;
    return fixed + 2 * pbp::dense_backend_bytes(ways, kNumQatRegs);
  }

  void evict_lru() {
    auto victim = cache_.begin();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    if (victim != cache_.end()) cache_.erase(victim);
  }

  std::size_t max_entries_;
  std::size_t max_entry_bytes_;
  std::atomic<std::uint64_t>* hits_;
  std::atomic<std::uint64_t>* misses_;
  std::map<Key, Entry> cache_;
  std::uint64_t tick_ = 0;
};

}  // namespace tangled::serve
