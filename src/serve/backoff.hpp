// backoff.hpp — capped exponential backoff with jitter for serve-level
// retries.
//
// Attempt n (1-based) doubles a base delay up to a cap, then draws the
// actual sleep uniformly from [delay/2, delay]: the lower bound keeps some
// separation between retrying jobs even with an unlucky draw, the jitter
// decorrelates jobs that failed together (the classic thundering-herd fix).
// Deterministic given the caller's RNG, so tests can pin exact schedules.
#pragma once

#include <chrono>
#include <cstdint>
#include <random>

namespace tangled::serve {

struct BackoffPolicy {
  std::chrono::milliseconds base{2};
  std::chrono::milliseconds cap{250};
};

/// Jittered delay before retry `attempt` (1-based: the delay slept after
/// the attempt-th failure).  Zero base yields zero (backoff disabled).
inline std::chrono::milliseconds backoff_delay(const BackoffPolicy& policy,
                                               unsigned attempt,
                                               std::mt19937_64& rng) {
  if (policy.base.count() <= 0) return std::chrono::milliseconds{0};
  // base << (attempt-1), saturating at the cap without shifting into UB.
  std::int64_t d = policy.base.count();
  for (unsigned i = 1; i < attempt && d < policy.cap.count(); ++i) d *= 2;
  d = std::min<std::int64_t>(d, policy.cap.count());
  std::uniform_int_distribution<std::int64_t> jitter(d - d / 2, d);
  return std::chrono::milliseconds{jitter(rng)};
}

}  // namespace tangled::serve
