// journal.hpp — the serve layer's crash-consistent write-ahead log.
//
// The JobServer admits work, runs it, and publishes exactly one terminal
// report per job — but a SIGKILL between admission and report silently
// loses everything in flight.  The journal closes that window: every
// admission, every durable mid-run checkpoint, and every terminal report is
// appended to an on-disk log BEFORE the corresponding in-memory state
// becomes observable, so a restarted daemon can replay the log and land in
// a state where
//
//   * every admitted-but-unreported job is re-run (resumed from its newest
//     journaled checkpoint when one exists), and
//   * every reported job's report is retained, so a resubmission bearing
//     the same idempotency key is answered from the log instead of running
//     again — exactly-once results across process death.
//
// On-disk format (checkpoint-v2 / wire framing discipline, little-endian):
//
//   record:  u32 magic "TNGJ"  u16 version  u8 type  u8 reserved
//            u32 payload_length  u32 crc32(payload)  payload
//
//   types:   kAdmit      payload = serve::JobSpec::serialize
//            kCheckpoint payload = key string, u64 seq, image-file string
//            kReport     payload = serve::JobReport::serialize
//
// Records live in segment files `journal-NNNNNN.tgj`; checkpoint images are
// separate `ckpt-<seq>.tgnc` files (checkpoint-v2 format, written with
// write_file_durable's fsync-then-rename-then-dir-fsync discipline) so the
// log itself stays small.  Appends are one write() of the whole frame
// followed by fsync() — a crash can tear at most the final record, and
// replay stops a segment at the first torn or corrupt frame (everything
// before it is intact by construction).
//
// Rotation + compaction: when the live segment exceeds Config::segment_bytes
// the journal writes a fresh segment containing only the *live* state
// (unreported admits, their newest checkpoint refs, and retained reports),
// fsyncs it, and only then deletes the old segments and any checkpoint
// image no live record references.  A crash mid-compaction leaves the old
// segments plus a possibly-torn new one; ascending replay of both is
// idempotent, so no crash point loses or duplicates state.
//
// Failure policy — degrade, never lie: any filesystem failure (ENOSPC, EIO,
// a failed fsync) marks the journal unhealthy.  Appends then return false
// and touch only the in-memory mirrors; the JobServer responds by shedding
// NEW admissions with a structured retry hint while jobs already admitted
// run to completion with same-process dedup intact.  An unhealthy journal
// never crashes the daemon and never truncates what it already made
// durable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/job.hpp"

namespace tangled::serve {

class Journal {
 public:
  struct Config {
    std::string dir;
    /// Live-segment rotation threshold (compaction trigger).
    std::size_t segment_bytes = std::size_t{1} << 20;
  };

  /// One admitted-but-unreported job reconstructed from the log.
  struct RecoveredJob {
    JobSpec spec;
    std::string checkpoint_file;  // full path; empty = restart from scratch
    std::uint64_t checkpoint_seq = 0;
  };

  /// Everything replay learned, in admit order.
  struct Recovery {
    std::vector<RecoveredJob> incomplete;
    /// Terminal reports by idempotency key — the exactly-once memory.
    std::unordered_map<std::string, JobReport> completed;
    std::uint64_t segments_replayed = 0;
    std::uint64_t bytes_replayed = 0;
    std::uint64_t torn_records = 0;  // tail records dropped (crash debris)
  };

  /// Open (creating the directory if needed), replay every segment into
  /// `out`, then compact into a fresh segment.  Returns nullptr with `*err`
  /// set when the directory cannot be created or the fresh segment cannot
  /// be written — an unusable journal at startup is a configuration error,
  /// not a degraded mode.
  static std::unique_ptr<Journal> open(const Config& config, Recovery* out,
                                       std::string* err);

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Append + fsync one record.  false = the record is NOT durable (the
  /// journal is now unhealthy); in-memory dedup state is updated either
  /// way.  append_admit must precede making the job visible to workers;
  /// append_report must precede delivering the report to any client.
  bool append_admit(const JobSpec& spec);
  bool append_report(const JobReport& rep);

  /// Durably write a checkpoint image for `key` and journal a reference to
  /// it; the previous image for the key is deleted only after the new
  /// reference is durable.  false = not durable (image discarded).
  bool append_checkpoint(const std::string& key,
                         const std::vector<std::uint8_t>& image);

  bool healthy() const;
  /// Cumulative journal bytes: replayed at open + appended since.
  std::uint64_t bytes() const;
  const std::string& dir() const { return dir_; }

  /// Test fault injection: consulted before each durable operation with
  /// "append", "fsync", or "checkpoint"; a nonzero return fails that
  /// operation with the returned errno.  Also installable via the
  /// TANGLED_JOURNAL_FAILPOINT environment variable ("enospc@N" / "eio@N":
  /// every durable operation from the Nth onward fails), read at open().
  void set_failpoint(std::function<int(const char* op)> fp);

 private:
  Journal() = default;

  struct LiveJob {
    std::vector<std::uint8_t> admit_payload;
    std::string ckpt_file;  // basename within dir_; empty = none
    std::uint64_t ckpt_seq = 0;
  };

  int failpoint_locked(const char* op);
  bool append_record_locked(std::uint8_t type,
                            const std::vector<std::uint8_t>& payload);
  bool compact_locked(const std::vector<std::string>& old_segments);
  void remove_unreferenced_images_locked();

  mutable std::mutex mu_;
  std::string dir_;
  std::size_t segment_bytes_ = std::size_t{1} << 20;
  int seg_fd_ = -1;
  std::uint64_t seg_index_ = 0;
  std::string seg_path_;
  std::size_t seg_size_ = 0;
  bool healthy_ = true;
  std::uint64_t bytes_ = 0;  // cumulative: replayed + appended
  std::uint64_t next_ckpt_seq_ = 1;
  std::unordered_map<std::string, LiveJob> live_;  // key → unreported job
  std::vector<std::string> live_order_;            // keys in admit order
  std::unordered_map<std::string, std::vector<std::uint8_t>> reports_;
  std::function<int(const char*)> failpoint_;
};

}  // namespace tangled::serve
