#include "serve/job_server.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <random>
#include <stdexcept>

#include "arch/multicycle_fsm.hpp"
#include "arch/recovery.hpp"
#include "arch/rtl_pipeline.hpp"
#include "arch/simulators.hpp"
#include "serve/backoff.hpp"
#include "serve/journal.hpp"
#include "serve/sim_pool.hpp"

namespace tangled::serve {

using Clock = std::chrono::steady_clock;

namespace {

/// Reservation charged for an RE job's compressed register file + chunk
/// pool.  Deliberately generous: real compressed files measure in the tens
/// of kilobytes (EXPERIMENTS.md §1.2); a migration to dense re-reserves the
/// difference through the migration guard.
constexpr std::size_t kReReserveBytes = std::size_t{4} << 20;  // 4 MiB

/// Stride-scheduler numerator: pass advances by kStrideScale/weight per
/// dequeue, so a weight-w tenant is picked w times as often as a weight-1
/// tenant while both are backlogged.
constexpr std::uint64_t kStrideScale = std::uint64_t{1} << 20;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

const char* health_state_name(HealthState h) {
  switch (h) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kBrowningOut:
      return "browning-out";
    case HealthState::kDegraded:
      return "degraded";
  }
  return "unknown";
}

struct JobServer::JobState {
  std::atomic<bool> cancel{false};
  /// Supervisor stall-preemption request: the runner's stop predicate and
  /// the injected-stall sleep both poll it; the worker clears it when the
  /// job is requeued or quarantined.
  std::atomic<bool> preempt{false};
  /// Liveness heartbeat: bumped by the runner's slice observer with every
  /// slice's retired-instruction count (plus a synthetic tick at each
  /// attempt start, so the supervisor's timer restarts with the attempt).
  /// The supervisor calls a running job stalled when this stops changing
  /// for stall_timeout.
  std::atomic<std::uint64_t> heartbeat{0};
  std::atomic<JobPhase> phase{JobPhase::kQueued};
  std::atomic<unsigned> attempts{0};
  /// Tenant the job is charged to (immutable after submit).
  std::string tenant;
  /// Extra budget bytes reserved by RE→dense migrations in the CURRENT
  /// attempt (guarded by the server mutex; released when the attempt's sim
  /// is destroyed).
  std::size_t extra_reserved = 0;

  /// Guards `engine` (set while a sim is live on the worker stack) and the
  /// backoff sleep.  progress() reads the engine's atomic counters under
  /// this mutex; the worker clears the pointer under it before destroying
  /// the sim, so a reader can never touch a dead engine.
  mutable std::mutex mu;
  std::condition_variable cv;  // backoff sleeps; woken by cancel()
  const QatEngine* engine = nullptr;
};

struct JobServer::QueuedJob {
  JobId id = 0;
  Job job;
  Clock::time_point submitted;
  Clock::time_point deadline;  // Clock::time_point::max() = none
  Clock::time_point started;   // filled at dequeue
  std::shared_ptr<JobState> state;
  /// Partial report carried across stall-preemptions: counters accumulate
  /// over every run segment; queue_ms/exec_ms sum the per-segment times.
  JobReport carry;
  /// Stall-preemptions survived so far (the next stall past
  /// config.max_preemptions quarantines instead of requeueing).
  unsigned preempt_count = 0;
  /// Injected-stall runs consumed (Job::stall_spec `times`).
  std::uint32_t stalls_fired = 0;
  /// Set by execute() when the run was preempted and should requeue rather
  /// than publish.
  bool requeue = false;
};

JobServer::JobServer(JobServerConfig config) : config_(config) {
  if (config_.threads == 0) config_.threads = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.chunk_shards > 0) {
    // Stripe chunk width 8 so the default job widths (8, 16 ways) are all
    // eligible; a stripe can serve any job with ways >= its chunk_ways.
    shards_ = std::make_shared<pbp::ShardedChunkPool>(config_.chunk_shards,
                                                      /*chunk_ways=*/8);
  }
  key_nonce_ = (static_cast<std::uint64_t>(std::random_device{}()) << 32) ^
               std::random_device{}();
  if (!config_.journal_dir.empty()) {
    Journal::Config jc;
    jc.dir = config_.journal_dir;
    jc.segment_bytes = config_.journal_segment_bytes;
    Journal::Recovery rec;
    std::string err;
    journal_ = Journal::open(jc, &rec, &err);
    if (journal_ == nullptr) throw std::runtime_error(err);
    tallies_.journal_replays = rec.segments_replayed;
    for (auto& [key, rep] : rec.completed) {
      durable_reports_[key] = std::move(rep);
    }
    // Re-run everything admitted but never reported — before the workers
    // start, so recovered jobs run ahead of new traffic in admit order.
    for (const auto& rj : rec.incomplete) {
      recover_job(rj.spec, rj.checkpoint_file);
    }
  }
  workers_.reserve(config_.threads);
  for (unsigned i = 0; i < config_.threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  supervisor_ = std::thread([this] { supervisor_main(); });
}

JobServer::~JobServer() { shutdown(true); }

std::optional<JobServer::JobId> JobServer::submit(Job job) {
  return submit_until(std::move(job), Clock::time_point::max(), nullptr);
}

std::optional<JobServer::JobId> JobServer::submit_for(
    Job job, std::chrono::milliseconds max_wait, std::string* reject_reason) {
  return submit_until(std::move(job), Clock::now() + max_wait, reject_reason);
}

std::optional<JobServer::JobId> JobServer::submit_until(
    Job job, Clock::time_point deadline, std::string* reject_reason) {
  std::unique_lock lk(mu_);
  // A flooding tenant is shed immediately, not queued behind global
  // backpressure — its backlog is its own, by design.
  if (tenant_over_quota_locked(job.tenant)) {
    ++tallies_.tenant_sheds;
    if (reject_reason != nullptr) *reject_reason = "tenant-over-quota";
    return std::nullopt;
  }
  const auto admissible = [&] {
    return !accepting_ || queued_total_ < config_.queue_capacity;
  };
  if (deadline == Clock::time_point::max()) {
    space_cv_.wait(lk, admissible);
  } else if (!space_cv_.wait_until(lk, deadline, admissible)) {
    ++tallies_.queue_full_rejections;
    if (reject_reason != nullptr) *reject_reason = "queue-full";
    return std::nullopt;
  }
  if (!accepting_) {
    if (reject_reason != nullptr) *reject_reason = "shutting-down";
    return std::nullopt;
  }
  if (tenant_over_quota_locked(job.tenant)) {  // refilled while waiting
    ++tallies_.tenant_sheds;
    if (reject_reason != nullptr) *reject_reason = "tenant-over-quota";
    return std::nullopt;
  }

  auto qj = std::make_unique<QueuedJob>();
  qj->id = next_id_++;
  qj->job = std::move(job);
  qj->submitted = Clock::now();
  const auto wall = qj->job.deadline.count() > 0 ? qj->job.deadline
                                                 : config_.default_deadline;
  qj->deadline = wall.count() > 0 ? qj->submitted + wall
                                  : Clock::time_point::max();
  qj->state = std::make_shared<JobState>();
  qj->state->tenant = qj->job.tenant;

  const JobId id = qj->id;
  states_.emplace(id, qj->state);
  submission_order_.push_back(id);
  enqueue_locked(std::move(qj));
  ++tallies_.submitted;
  queue_cv_.notify_one();
  return id;
}

std::optional<JobServer::JobId> JobServer::try_submit(
    Job job, std::string* reject_reason) {
  {
    std::lock_guard lk(mu_);
    if (!accepting_) {
      if (reject_reason != nullptr) *reject_reason = "shutting-down";
      return std::nullopt;
    }
    if (tenant_over_quota_locked(job.tenant)) {
      ++tallies_.tenant_sheds;
      if (reject_reason != nullptr) *reject_reason = "tenant-over-quota";
      return std::nullopt;
    }
    if (queued_total_ >= config_.queue_capacity) {
      ++tallies_.queue_full_rejections;
      if (reject_reason != nullptr) *reject_reason = "queue-full";
      return std::nullopt;
    }
  }
  // Space existed a moment ago; submit() re-checks under the same lock and
  // can only block briefly if a racing submitter stole the slot.
  return submit(std::move(job));
}

void JobServer::recover_job(const JobSpec& spec,
                            const std::string& checkpoint_file) {
  auto qj = std::make_unique<QueuedJob>();
  qj->submitted = Clock::now();
  qj->state = std::make_shared<JobState>();
  qj->state->tenant = spec.tenant;
  bool bad = false;
  std::string bad_what;
  try {
    qj->job = spec.to_job();
  } catch (const std::exception& e) {
    // The spec materialized when it was first admitted, so this is a
    // journal tampered with or a server downgraded across versions; the
    // key still resolves exactly-once, to an error report.
    bad = true;
    bad_what = e.what();
    qj->job.name = spec.name;
    qj->job.idempotency_key = spec.idempotency_key;
    qj->job.tenant = spec.tenant;
  }
  qj->job.resume_checkpoint = checkpoint_file;
  if (qj->job.checkpoint_every == 0) {
    qj->job.checkpoint_every = config_.checkpoint_every_default;
  }
  // The deadline clock restarts at recovery: queue time in the previous
  // process is unknowable and charging it would spuriously expire work the
  // journal promised to finish.
  const auto wall = qj->job.deadline.count() > 0 ? qj->job.deadline
                                                 : config_.default_deadline;
  qj->deadline = wall.count() > 0 ? qj->submitted + wall
                                  : Clock::time_point::max();
  JobId id = 0;
  {
    std::lock_guard lk(mu_);
    id = next_id_++;
    qj->id = id;
    states_.emplace(id, qj->state);
    submission_order_.push_back(id);
    live_keys_[spec.idempotency_key] = id;
    ++tallies_.submitted;
    ++tallies_.jobs_recovered;
  }
  if (bad) {
    qj->started = Clock::now();
    JobReport rep;
    rep.outcome = JobOutcome::kError;
    rep.error = "recovered spec no longer materializes: " + bad_what;
    publish(*qj, *qj->state, std::move(rep));
    return;
  }
  std::lock_guard lk(mu_);
  enqueue_locked(std::move(qj));
  queue_cv_.notify_one();
}

std::optional<JobServer::JobId> JobServer::submit_spec(
    JobSpec spec, std::string* reject_reason) {
  return submit_spec_until(std::move(spec), Clock::time_point::max(),
                           reject_reason);
}

std::optional<JobServer::JobId> JobServer::submit_spec_for(
    JobSpec spec, std::chrono::milliseconds max_wait,
    std::string* reject_reason) {
  return submit_spec_until(std::move(spec), Clock::now() + max_wait,
                           reject_reason);
}

std::optional<JobServer::JobId> JobServer::try_submit_spec(
    JobSpec spec, std::string* reject_reason) {
  return submit_spec_until(std::move(spec), Clock::now(), reject_reason);
}

std::optional<JobServer::JobId> JobServer::submit_spec_until(
    JobSpec spec, Clock::time_point deadline, std::string* reject_reason) {
  Job job;
  try {
    job = spec.to_job();
  } catch (const std::exception& e) {
    if (reject_reason != nullptr) {
      *reject_reason = std::string("bad-job: ") + e.what();
    }
    return std::nullopt;
  }
  if (journal_ == nullptr) {
    // No durability configured: plain admission (the bad-job gate above
    // still applied).
    return submit_until(std::move(job), deadline, reject_reason);
  }
  if (job.checkpoint_every == 0) {
    job.checkpoint_every = config_.checkpoint_every_default;
  }

  std::unique_lock lk(mu_);
  if (spec.idempotency_key.empty()) {
    // Surrogate key: unique within this process AND across restarts (the
    // nonce), so an unkeyed job can never collide with a journaled one.
    spec.idempotency_key = "auto:" + std::to_string(key_nonce_) + ":" +
                           std::to_string(++auto_key_counter_);
  }
  job.idempotency_key = spec.idempotency_key;
  const std::string key = spec.idempotency_key;

  for (;;) {
    // Exactly-once, finished: answer from the stored report under a fresh
    // id — nothing runs twice.
    if (const auto done = durable_reports_.find(key);
        done != durable_reports_.end()) {
      const JobId id = next_id_++;
      JobReport rep = done->second;
      rep.id = id;
      rep.deduped = true;
      auto st = std::make_shared<JobState>();
      st->phase.store(JobPhase::kDone, std::memory_order_relaxed);
      states_.emplace(id, st);
      submission_order_.push_back(id);
      ++tallies_.submitted;
      ++tallies_.reports_deduped;
      apply_terminal_tallies_locked(rep);
      reports_.emplace(id, std::move(rep));
      report_cv_.notify_all();
      return id;
    }
    // Exactly-once, live: point the caller at the in-flight job.
    if (const auto live = live_keys_.find(key); live != live_keys_.end()) {
      if (live->second != 0) return live->second;
      // The key is reserved by a submission fsyncing its admit record
      // outside the lock; the caller retries and lands on the real id.
      if (reject_reason != nullptr) *reject_reason = "duplicate-pending";
      return std::nullopt;
    }
    if (!accepting_) {
      if (reject_reason != nullptr) *reject_reason = "shutting-down";
      return std::nullopt;
    }
    if (tenant_over_quota_locked(job.tenant)) {
      ++tallies_.tenant_sheds;
      if (reject_reason != nullptr) *reject_reason = "tenant-over-quota";
      return std::nullopt;
    }
    if (queued_total_ < config_.queue_capacity) break;
    if (deadline == Clock::time_point::max()) {
      space_cv_.wait(lk);
    } else if (space_cv_.wait_until(lk, deadline) ==
               std::cv_status::timeout) {
      ++tallies_.queue_full_rejections;
      if (reject_reason != nullptr) *reject_reason = "queue-full";
      return std::nullopt;
    }
  }

  // Write-ahead: the admit record must be durable before the job becomes
  // runnable.  The fsync happens outside mu_ (it can take milliseconds);
  // the key reservation above keeps a racing duplicate from slipping in.
  live_keys_[key] = 0;
  lk.unlock();
  const bool durable = journal_->append_admit(spec);
  lk.lock();
  if (!durable) {
    live_keys_.erase(key);
    ++tallies_.journal_shed;
    if (reject_reason != nullptr) *reject_reason = "journal-unavailable";
    return std::nullopt;
  }

  auto qj = std::make_unique<QueuedJob>();
  qj->id = next_id_++;
  qj->job = std::move(job);
  qj->submitted = Clock::now();
  const auto wall = qj->job.deadline.count() > 0 ? qj->job.deadline
                                                 : config_.default_deadline;
  qj->deadline = wall.count() > 0 ? qj->submitted + wall
                                  : Clock::time_point::max();
  qj->state = std::make_shared<JobState>();
  qj->state->tenant = qj->job.tenant;
  const JobId id = qj->id;
  live_keys_[key] = id;
  states_.emplace(id, qj->state);
  submission_order_.push_back(id);
  ++tallies_.submitted;
  if (stopping_) {
    // shutdown() finished its drain during the fsync window: the workers
    // are gone, so enqueueing would strand the job.  Its admit record is
    // durable — a restarted daemon will run it — but THIS process owes the
    // id a terminal report.
    lk.unlock();
    qj->started = Clock::now();
    JobReport rep;
    rep.outcome = JobOutcome::kCancelled;
    publish(*qj, *qj->state, std::move(rep));
    return id;
  }
  enqueue_locked(std::move(qj));
  queue_cv_.notify_one();
  return id;
}

bool JobServer::cancel(JobId id) {
  std::shared_ptr<JobState> st;
  {
    std::lock_guard lk(mu_);
    const auto it = states_.find(id);
    if (it == states_.end() || reports_.count(id) != 0) return false;
    st = it->second;
  }
  st->cancel.store(true, std::memory_order_relaxed);
  st->cv.notify_all();      // interrupt a backoff sleep
  memory_cv_.notify_all();  // interrupt a memory-reservation wait
  return true;
}

JobReport JobServer::wait(JobId id) {
  std::unique_lock lk(mu_);
  if (states_.find(id) == states_.end()) {
    throw std::invalid_argument("JobServer::wait: unknown job id " +
                                std::to_string(id));
  }
  report_cv_.wait(lk, [&] { return reports_.count(id) != 0; });
  return reports_.at(id);
}

bool JobServer::try_report(JobId id, JobReport* out) const {
  std::lock_guard lk(mu_);
  const auto it = reports_.find(id);
  if (it == reports_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

std::vector<JobReport> JobServer::wait_all() {
  std::unique_lock lk(mu_);
  report_cv_.wait(lk,
                  [&] { return reports_.size() == submission_order_.size(); });
  std::vector<JobReport> out;
  out.reserve(submission_order_.size());
  for (const JobId id : submission_order_) out.push_back(reports_.at(id));
  return out;
}

std::optional<JobProgress> JobServer::progress(JobId id) const {
  std::shared_ptr<JobState> st;
  {
    std::lock_guard lk(mu_);
    const auto it = states_.find(id);
    if (it == states_.end()) return std::nullopt;
    st = it->second;
  }
  JobProgress p;
  p.phase = st->phase.load(std::memory_order_relaxed);
  p.attempts = st->attempts.load(std::memory_order_relaxed);
  {
    std::lock_guard lk(st->mu);
    if (st->engine != nullptr) p.qat = st->engine->stats_snapshot();
  }
  return p;
}

ServerStats JobServer::stats() const {
  std::lock_guard lk(mu_);
  ServerStats s = tallies_;
  s.in_flight_bytes = reserved_bytes_;
  s.peak_in_flight_bytes = peak_reserved_bytes_;
  s.queue_depth = queued_total_;
  s.active_jobs = active_;
  s.health = health_.load(std::memory_order_relaxed);
  if (journal_ != nullptr) s.journal_bytes = journal_->bytes();
  s.sim_pool_hits = pool_hits_.load(std::memory_order_relaxed);
  s.sim_pool_misses = pool_misses_.load(std::memory_order_relaxed);
  return s;
}

void JobServer::shutdown(bool drain) {
  std::lock_guard shutdown_lk(shutdown_mu_);
  std::vector<std::unique_ptr<QueuedJob>> to_cancel;
  {
    std::lock_guard lk(mu_);
    if (joined_) return;
    accepting_ = false;
    space_cv_.notify_all();
    if (!drain) {
      to_cancel.reserve(queued_total_);
      for (auto& [tenant, t] : tenants_) {
        while (!t.queue.empty()) {
          to_cancel.push_back(std::move(t.queue.front()));
          t.queue.pop_front();
          --queued_total_;
        }
      }
      for (auto& [id, st] : states_) {
        if (reports_.count(id) == 0) {
          st->cancel.store(true, std::memory_order_relaxed);
          st->cv.notify_all();
        }
      }
      memory_cv_.notify_all();
    }
  }
  // Queued-but-never-run jobs still get their terminal report.
  for (auto& qj : to_cancel) {
    qj->started = Clock::now();
    JobReport rep;
    rep.outcome = JobOutcome::kCancelled;
    publish(*qj, *qj->state, std::move(rep));
  }
  {
    std::unique_lock lk(mu_);
    drain_cv_.wait(lk, [&] { return queued_total_ == 0 && active_ == 0; });
    stopping_ = true;
    queue_cv_.notify_all();
  }
  for (auto& w : workers_) w.join();
  {
    std::lock_guard slk(sup_mu_);
    sup_stop_ = true;
  }
  sup_cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();
  {
    std::lock_guard lk(mu_);
    joined_ = true;
  }
}

// ---------------------------------------------------------------------------
// Memory budget.

bool JobServer::reserve_memory(std::size_t bytes, JobState& st,
                               Clock::time_point deadline) {
  std::unique_lock lk(mu_);
  TenantState& t = tenant_state_locked(st.tenant);
  const auto fits = [&] {
    if (reserved_bytes_ + bytes > config_.memory_budget_bytes) return false;
    return config_.tenant_memory_budget_bytes == 0 ||
           t.reserved_bytes + bytes <= config_.tenant_memory_budget_bytes;
  };
  const auto interrupted = [&] {
    return st.cancel.load(std::memory_order_relaxed);
  };
  while (!fits()) {
    if (interrupted()) return false;
    if (deadline == Clock::time_point::max()) {
      memory_cv_.wait(lk);
    } else if (memory_cv_.wait_until(lk, deadline) ==
               std::cv_status::timeout) {
      return false;
    }
  }
  reserved_bytes_ += bytes;
  t.reserved_bytes += bytes;
  peak_reserved_bytes_ = std::max(peak_reserved_bytes_, reserved_bytes_);
  return true;
}

bool JobServer::try_reserve_extra(std::size_t bytes, JobState& st) {
  std::lock_guard lk(mu_);
  TenantState& t = tenant_state_locked(st.tenant);
  const bool over_tenant =
      config_.tenant_memory_budget_bytes != 0 &&
      t.reserved_bytes + bytes > config_.tenant_memory_budget_bytes;
  if (over_tenant || reserved_bytes_ + bytes > config_.memory_budget_bytes) {
    ++tallies_.migrations_shed;
    return false;
  }
  reserved_bytes_ += bytes;
  t.reserved_bytes += bytes;
  peak_reserved_bytes_ = std::max(peak_reserved_bytes_, reserved_bytes_);
  st.extra_reserved += bytes;
  return true;
}

void JobServer::release_memory(std::size_t bytes, const std::string& tenant) {
  if (bytes == 0) return;
  {
    std::lock_guard lk(mu_);
    assert(bytes <= reserved_bytes_);
    reserved_bytes_ -= bytes;
    TenantState& t = tenant_state_locked(tenant);
    assert(bytes <= t.reserved_bytes);
    t.reserved_bytes -= bytes;
  }
  memory_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Tenant scheduling.

JobServer::TenantState& JobServer::tenant_state_locked(
    const std::string& tenant) {
  auto [it, fresh] = tenants_.try_emplace(tenant);
  TenantState& t = it->second;
  if (fresh) {
    t.weight = 1;
    for (const auto& [name, w] : config_.tenant_weights) {
      if (name == tenant) t.weight = std::max(1u, w);
    }
  }
  return t;
}

JobServer::TenantState* JobServer::pick_tenant_locked() {
  TenantState* best = nullptr;
  for (auto& [name, t] : tenants_) {
    if (t.queue.empty()) continue;
    if (config_.tenant_max_inflight != 0 &&
        t.inflight >= config_.tenant_max_inflight) {
      continue;
    }
    if (best == nullptr || t.pass < best->pass) best = &t;
  }
  return best;
}

bool JobServer::tenant_over_quota_locked(const std::string& tenant) const {
  if (config_.tenant_max_queued == 0) return false;
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() &&
         it->second.queue.size() >= config_.tenant_max_queued;
}

void JobServer::enqueue_locked(std::unique_ptr<QueuedJob> qj) {
  TenantState& t = tenant_state_locked(qj->job.tenant);
  // A tenant joining (or returning from idle) starts at the global virtual
  // time: it gets its fair share from now on, no credit for idle history.
  t.pass = std::max(t.pass, global_pass_);
  t.queue.push_back(std::move(qj));
  ++queued_total_;
}

void JobServer::requeue(std::unique_ptr<QueuedJob> qj, JobReport carry) {
  auto st = qj->state;
  // Fold this run segment into the carried partial report; the next segment
  // measures its own queue wait from now.
  carry.queue_ms += ms_between(qj->submitted, qj->started);
  carry.exec_ms += ms_between(qj->started, Clock::now());
  qj->carry = std::move(carry);
  qj->requeue = false;
  qj->submitted = Clock::now();
  st->preempt.store(false, std::memory_order_relaxed);
  st->phase.store(JobPhase::kQueued, std::memory_order_relaxed);
  {
    std::lock_guard lk(mu_);
    ++tallies_.preemptions;
    TenantState& t = tenant_state_locked(qj->job.tenant);
    --t.inflight;
    --active_;
    enqueue_locked(std::move(qj));
  }
  queue_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Execution.

void JobServer::worker_main() {
  // Worker-local simulator cache: acquire() is only ever called from this
  // thread, so the hot path takes no lock.  Hit/miss tallies aggregate
  // through the server's relaxed atomics.
  SimulatorPool pool(config_.sim_pool, std::size_t{8} << 20, &pool_hits_,
                     &pool_misses_);
  SimulatorPool* pool_ptr = config_.sim_pool > 0 ? &pool : nullptr;
  for (;;) {
    std::unique_ptr<QueuedJob> qj;
    {
      std::unique_lock lk(mu_);
      queue_cv_.wait(
          lk, [&] { return stopping_ || pick_tenant_locked() != nullptr; });
      TenantState* t = pick_tenant_locked();
      if (t == nullptr) return;  // stopping_ and nothing dequeueable
      qj = std::move(t->queue.front());
      t->queue.pop_front();
      --queued_total_;
      // Stride scheduling: global virtual time follows the dequeued tenant,
      // and the tenant pays 1/weight of a quantum for the slot.
      global_pass_ = std::max(global_pass_, t->pass);
      t->pass += kStrideScale / t->weight;
      ++t->inflight;
      ++active_;
      space_cv_.notify_one();
    }
    qj->started = Clock::now();
    auto st = qj->state;  // keep alive across publish
    JobReport rep = execute(*qj, *st, pool_ptr);
    if (qj->requeue) {
      // Supervisor preemption: back on the tenant queue with the partial
      // report carried — no publish, the job is not terminal.
      requeue(std::move(qj), std::move(rep));
      continue;
    }
    publish(*qj, *st, std::move(rep), /*worker_terminal=*/true);
  }
}

// ---------------------------------------------------------------------------
// Supervision: stall watchdog + health machine (ISSUE 9).

void JobServer::supervisor_main() {
  using namespace std::chrono_literals;
  std::chrono::milliseconds tick = config_.supervise_tick;
  if (tick.count() <= 0) {
    tick = config_.stall_timeout.count() > 0
               ? std::clamp<std::chrono::milliseconds>(
                     config_.stall_timeout / 4, 5ms, 250ms)
               : 50ms;
  }

  struct Seen {
    std::uint64_t beat = 0;
    Clock::time_point changed;
  };
  std::unordered_map<JobId, Seen> seen;
  std::deque<Clock::time_point> recent_stalls;

  std::unique_lock slk(sup_mu_);
  for (;;) {
    sup_cv_.wait_for(slk, tick, [&] { return sup_stop_; });
    if (sup_stop_) return;

    const auto now = Clock::now();
    std::vector<std::shared_ptr<JobState>> wake;
    {
      std::lock_guard lk(mu_);
      // --- Stall scan: only RUNNING jobs can stall.  Backoff sleeps and
      // memory waits are intentional idleness, not wedged work. ---
      if (config_.stall_timeout.count() > 0) {
        for (auto& [id, st] : states_) {
          if (st->phase.load(std::memory_order_relaxed) !=
              JobPhase::kRunning) {
            seen.erase(id);
            continue;
          }
          if (st->preempt.load(std::memory_order_relaxed)) {
            // Already preempted; keep nudging until the worker unwinds (a
            // notify racing the sleeper's predicate check can be lost).
            wake.push_back(st);
            continue;
          }
          const std::uint64_t beat =
              st->heartbeat.load(std::memory_order_relaxed);
          auto [it, fresh] = seen.try_emplace(id, Seen{beat, now});
          if (fresh) continue;
          if (it->second.beat != beat) {
            it->second = Seen{beat, now};
            continue;
          }
          if (now - it->second.changed >= config_.stall_timeout) {
            st->preempt.store(true, std::memory_order_relaxed);
            ++tallies_.stalls_detected;
            recent_stalls.push_back(now);
            wake.push_back(st);
            // Restart the timer so the flag is not re-raised while the
            // worker unwinds the preempted slice.
            it->second.changed = now;
          }
        }
      }

      // --- Health machine.  Degraded dominates browning-out. ---
      Clock::time_point oldest = Clock::time_point::max();
      for (const auto& [name, t] : tenants_) {
        if (!t.queue.empty()) {
          oldest = std::min(oldest, t.queue.front()->submitted);
        }
      }
      std::chrono::milliseconds queue_delay{0};
      if (oldest != Clock::time_point::max()) {
        queue_delay =
            std::chrono::duration_cast<std::chrono::milliseconds>(now - oldest);
      }
      while (!recent_stalls.empty() && now - recent_stalls.front() > 1s) {
        recent_stalls.pop_front();
      }
      HealthState h = HealthState::kHealthy;
      const bool delay_gated = config_.brownout_queue_delay.count() > 0;
      if ((delay_gated && queue_delay >= config_.brownout_queue_delay) ||
          !recent_stalls.empty()) {
        h = HealthState::kBrowningOut;
      }
      if ((journal_ != nullptr && !journal_->healthy()) ||
          (delay_gated && queue_delay >= 4 * config_.brownout_queue_delay)) {
        h = HealthState::kDegraded;
      }
      health_.store(static_cast<std::uint8_t>(h), std::memory_order_relaxed);
      tallies_.health = static_cast<std::uint8_t>(h);
    }
    // Outside mu_: wake preempted jobs out of injected-stall or backoff
    // sleeps so the worker frees up promptly.
    for (const auto& st : wake) st->cv.notify_all();
  }
}

void JobServer::apply_terminal_tallies_locked(const JobReport& rep) {
  switch (rep.outcome) {
    case JobOutcome::kCompleted:
      ++tallies_.completed;
      break;
    case JobOutcome::kQuarantined:
      ++tallies_.quarantined;
      break;
    case JobOutcome::kDeadlineExpired:
      ++tallies_.deadline_expired;
      break;
    case JobOutcome::kCancelled:
      ++tallies_.cancelled;
      break;
    case JobOutcome::kRejectedMemory:
      ++tallies_.rejected_memory;
      break;
    case JobOutcome::kError:
      ++tallies_.errors;
      break;
  }
  tallies_.retries += rep.retries;
  tallies_.ecc_corrected += rep.ecc_corrected;
  tallies_.ecc_detected += rep.ecc_detected;
}

void JobServer::publish(QueuedJob& qj, JobState& st, JobReport rep,
                        bool worker_terminal) {
  rep.id = qj.id;
  rep.name = qj.job.name;
  rep.idem_key = qj.job.idempotency_key;
  rep.tenant = qj.job.tenant;
  rep.preemptions = qj.preempt_count;
  // Accumulate (not assign): a preempted job carries the times of its
  // earlier run segments in rep already (see requeue()).
  rep.queue_ms += ms_between(qj.submitted, qj.started);
  rep.exec_ms += ms_between(qj.started, Clock::now());
  st.phase.store(JobPhase::kDone, std::memory_order_relaxed);
  // Write-ahead: the terminal record goes to the journal BEFORE the report
  // becomes observable.  A crash after the append replays as completed
  // (future resubmits dedup against the stored report); a crash before it
  // replays as incomplete and re-runs — never lost, never doubled.
  if (journal_ != nullptr && !rep.idem_key.empty()) {
    journal_->append_report(rep);
  }
  {
    std::lock_guard lk(mu_);
    const bool inserted = reports_.emplace(qj.id, rep).second;
    // The exactly-once contract: each admitted job reaches publish() on
    // precisely one path (worker terminal, or shutdown(false) for jobs
    // still queued).  A duplicate here is a server bug, not a job failure.
    assert(inserted);
    (void)inserted;
    apply_terminal_tallies_locked(rep);
    if (journal_ != nullptr && !rep.idem_key.empty()) {
      live_keys_.erase(rep.idem_key);
      durable_reports_[rep.idem_key] = std::move(rep);
    }
    if (worker_terminal) {
      --active_;
      --tenant_state_locked(qj.job.tenant).inflight;
      // A tenant freeing an in-flight slot can unblock ineligible queues.
      queue_cv_.notify_all();
      if (queued_total_ == 0 && active_ == 0) drain_cv_.notify_all();
    }
  }
  report_cv_.notify_all();
}

JobReport JobServer::execute(QueuedJob& qj, JobState& st,
                             SimulatorPool* pool) {
  // Resume the partial report of a preempted-and-requeued job: counters
  // keep accumulating across run segments.
  JobReport rep = qj.carry;
  const Job& job = qj.job;

  if (st.cancel.load(std::memory_order_relaxed)) {
    rep.outcome = JobOutcome::kCancelled;
    return rep;
  }
  if (Clock::now() >= qj.deadline) {
    rep.outcome = JobOutcome::kDeadlineExpired;
    return rep;
  }

  // --- Admission: reserve the register-file footprint. ---
  const std::size_t estimate =
      job.backend == pbp::Backend::kDense
          ? pbp::dense_backend_bytes(job.ways, kNumQatRegs)
          : kReReserveBytes;
  if (estimate > config_.memory_budget_bytes) {
    // A register file wider than the whole budget can never be admitted.
    rep.outcome = JobOutcome::kRejectedMemory;
    rep.error = "register file needs " + std::to_string(estimate) +
                " bytes, budget is " +
                std::to_string(config_.memory_budget_bytes);
    return rep;
  }
  if (config_.tenant_memory_budget_bytes != 0 &&
      estimate > config_.tenant_memory_budget_bytes) {
    rep.outcome = JobOutcome::kRejectedMemory;
    rep.error = "register file needs " + std::to_string(estimate) +
                " bytes, tenant budget is " +
                std::to_string(config_.tenant_memory_budget_bytes);
    return rep;
  }
  st.phase.store(JobPhase::kWaitingMemory, std::memory_order_relaxed);
  if (!reserve_memory(estimate, st, qj.deadline)) {
    rep.outcome = st.cancel.load(std::memory_order_relaxed)
                      ? JobOutcome::kCancelled
                      : JobOutcome::kDeadlineExpired;
    return rep;
  }
  rep.reserved_bytes = estimate;

  switch (job.sim) {
    case SimKind::kFunc:
      execute_with<FunctionalSim>(
          [&] { return std::make_unique<FunctionalSim>(job.ways, job.backend); },
          qj, st, rep, pool);
      break;
    case SimKind::kMulti:
      execute_with<MultiCycleSim>(
          [&] { return std::make_unique<MultiCycleSim>(job.ways, job.backend); },
          qj, st, rep, pool);
      break;
    case SimKind::kMultiFsm:
      execute_with<MultiCycleFsmSim>(
          [&] {
            return std::make_unique<MultiCycleFsmSim>(job.ways, job.backend);
          },
          qj, st, rep, pool);
      break;
    case SimKind::kPipe4:
      execute_with<PipelineSim>(
          [&] {
            return std::make_unique<PipelineSim>(
                job.ways, PipelineConfig{.stages = 4, .forwarding = true},
                job.backend);
          },
          qj, st, rep, pool);
      break;
    case SimKind::kPipe5:
      execute_with<PipelineSim>(
          [&] {
            return std::make_unique<PipelineSim>(
                job.ways, PipelineConfig{.stages = 5, .forwarding = true},
                job.backend);
          },
          qj, st, rep, pool);
      break;
    case SimKind::kPipe5NoFwd:
      execute_with<PipelineSim>(
          [&] {
            return std::make_unique<PipelineSim>(
                job.ways, PipelineConfig{.stages = 5, .forwarding = false},
                job.backend);
          },
          qj, st, rep, pool);
      break;
    case SimKind::kRtl:
      execute_with<RtlPipelineSim>(
          [&] {
            return std::make_unique<RtlPipelineSim>(job.ways, job.backend);
          },
          qj, st, rep, pool);
      break;
  }

  release_memory(rep.reserved_bytes, job.tenant);
  rep.reserved_bytes = estimate;
  return rep;
}

template <typename SimT, typename MakeSim>
void JobServer::execute_with(MakeSim&& make_sim, QueuedJob& qj, JobState& st,
                             JobReport& rep, SimulatorPool* pool) {
  const Job& job = qj.job;
  // Shared RE chunk-pool stripe the job is pinned to (by id), when sharding
  // is on and the job is eligible: compressed backend, no ECC (stripes are
  // cross-job — per-job integrity state must not leak between jobs), no
  // fault plan (upsets and symbol caps mutate the pool), and wide enough
  // for the stripe's chunk width.  A checkpoint restore mid-job silently
  // reverts the job to a private pool (see DESIGN.md §12) — correct, just
  // unshared.
  std::shared_ptr<pbp::ChunkPool> stripe;
  if (shards_ != nullptr && job.backend == pbp::Backend::kCompressed &&
      job.ecc == pbp::EccMode::kOff && job.fault_plan.empty() &&
      job.ways >= shards_->chunk_ways()) {
    stripe = shards_->stripe(qj.id);
  }
  // Mid-run slicing (checkpoints, stop-predicate polling) is only sound on
  // the instruction-atomic models; the latch-level pipeline discards
  // in-flight state between run() calls (see arch/recovery.hpp).
  const bool atomic_model = job.sim != SimKind::kRtl;
  const std::uint64_t checkpoint_every =
      atomic_model ? job.checkpoint_every : 0;
  const std::uint64_t slice_cap =
      atomic_model ? config_.slice_instructions : 0;
  const unsigned retry_max =
      job.retry_max >= 0 ? static_cast<unsigned>(job.retry_max)
                         : config_.retry_max;

  std::mt19937_64 jitter_rng(config_.seed ^ qj.id);
  const BackoffPolicy backoff{config_.backoff_base, config_.backoff_cap};

  const auto cancelled = [&] {
    return st.cancel.load(std::memory_order_relaxed);
  };
  const auto preempted = [&] {
    return st.preempt.load(std::memory_order_relaxed);
  };
  const auto past_deadline = [&] { return Clock::now() >= qj.deadline; };

  // Injected-stall test seam (Job::stall_spec, parsed at admission): once
  // this run segment retires `at` instructions, sleep `ms` — cooperatively,
  // polling cancel/preempt, so the supervisor can always free the worker.
  std::optional<StallSpec> stall;
  if (!job.stall_spec.empty()) {
    try {
      stall = parse_stall_spec(job.stall_spec);
    } catch (const std::exception& e) {
      rep.outcome = JobOutcome::kError;
      rep.error = e.what();
      return;
    }
  }

  // A requeued job's attempts keep counting up from the earlier segments.
  const unsigned prior_attempts = rep.attempts;

  for (unsigned attempt = 1; attempt <= retry_max + 1; ++attempt) {
    st.attempts.store(prior_attempts + attempt, std::memory_order_relaxed);
    rep.attempts = prior_attempts + attempt;
    if (cancelled()) {
      rep.outcome = JobOutcome::kCancelled;
      return;
    }
    if (past_deadline()) {
      rep.outcome = JobOutcome::kDeadlineExpired;
      return;
    }

    RecoveryStats rs;
    bool run_ok = false;
    {
      // Sim scope: the engine pointer published for progress() is cleared
      // (under st.mu) before the sim leaves scope.  With pooling on, the
      // simulator comes back from the worker's cache rewound to power-on
      // state (reset == fresh-construct, bit-identically); acquiring per
      // attempt means a retry's machine is as pristine as attempt 1's.
      std::shared_ptr<SimT> sim;
      try {
        if (pool != nullptr) {
          sim = pool->acquire<SimT>(job.sim, job.backend, job.ways,
                                    [&] { return make_sim(); });
        } else {
          sim = make_sim();
        }
        if (stripe != nullptr) sim->qat().use_chunk_pool(stripe);
      } catch (const std::exception& e) {
        rep.outcome = JobOutcome::kError;
        rep.error = e.what();
        return;
      }
      sim->load(job.program);
      if (!job.fault_plan.empty()) sim->set_fault_plan(job.fault_plan);
      sim->set_max_cycles(job.max_cycles);
      sim->set_ecc_mode(job.ecc);
      sim->set_ecc_epoch(job.ecc_epoch);
      sim->set_scrub_every(job.scrub_every);
      sim->set_qat_threads(job.qat_threads);
      if (job.backend == pbp::Backend::kCompressed) {
        // Memory-pressure hook: an RE→dense migration must fit in the
        // budget or it is shed and the exhaustion traps instead.
        sim->qat().set_migration_guard([this, &st](std::size_t extra) {
          return try_reserve_extra(extra, st);
        });
      }
      if (attempt == 1 && !job.resume_image.empty()) {
        // Supervisor preemption: resume from the in-memory image the worker
        // snapshotted when it yielded the slice.  Same fallback contract as
        // the journal path below: a corrupt image is a fresh start.
        try {
          load_checkpoint(job.resume_image, sim->cpu(), sim->memory(),
                          sim->qat());
        } catch (const CheckpointError&) {
        }
      } else if (attempt == 1 && !job.resume_checkpoint.empty()) {
        // Journal recovery: pick the run up from the newest durable image.
        // ECC policy / sharding were applied above and survive the restore
        // (policy is never serialized); the sidecars are re-encoded and the
        // register file re-sharded deterministically by load.  Resumption
        // is an optimization — a missing or corrupt image just means a
        // fresh start, correctness comes from re-execution.
        try {
          load_checkpoint_file(job.resume_checkpoint, sim->cpu(),
                               sim->memory(), sim->qat());
          rep.resumed = true;
        } catch (const CheckpointError&) {
        }
      }
      {
        std::lock_guard lk(st.mu);
        st.engine = &sim->qat();
      }
      st.phase.store(JobPhase::kRunning, std::memory_order_relaxed);
      // Synthetic heartbeat at attempt start: the supervisor's stall timer
      // restarts with the attempt (sim construction and checkpoint load are
      // not stalls).
      st.heartbeat.fetch_add(1, std::memory_order_relaxed);

      CheckpointingRunner<SimT> runner(*sim, checkpoint_every, slice_cap);
      std::uint64_t segment_retired = 0;
      runner.set_slice_observer([&](std::uint64_t retired) {
        st.heartbeat.fetch_add(retired, std::memory_order_relaxed);
        segment_retired += retired;
        if (stall && qj.stalls_fired < stall->times &&
            segment_retired >= stall->at) {
          ++qj.stalls_fired;
          const auto until =
              Clock::now() + std::chrono::milliseconds(stall->ms);
          // Chunked so a lost cv notify costs at most one quantum, never
          // the whole injected sleep.
          while (Clock::now() < until && !cancelled() && !preempted()) {
            const auto quantum =
                std::min(until, Clock::now() + std::chrono::milliseconds(2));
            std::unique_lock slk(st.mu);
            st.cv.wait_until(slk, quantum,
                             [&] { return cancelled() || preempted(); });
          }
        }
      });
      if (journal_ != nullptr && checkpoint_every != 0 &&
          !job.idempotency_key.empty()) {
        // Persist a resume image roughly every checkpoint_every lineage
        // instructions (the runner snapshots more often when the polling
        // slice cap is smaller — throttle the disk cadence, not the
        // in-memory one).
        runner.set_checkpoint_sink(
            [this, &job, next_disk = checkpoint_every](
                const std::vector<std::uint8_t>& image,
                std::uint64_t completed) mutable {
              if (completed < next_disk) return;
              next_disk = completed + job.checkpoint_every;
              journal_->append_checkpoint(job.idempotency_key, image);
            });
      }
      rs = runner.run(
          job.max_instructions,
          [&](const SimT& s) {
            return !job.validate || job.validate(s.cpu());
          },
          [&] { return cancelled() || past_deadline() || preempted(); });

      if (rs.stopped && preempted() && !cancelled() && !past_deadline() &&
          atomic_model && qj.preempt_count < config_.max_preemptions) {
        // Preempted and about to requeue: snapshot the machine as the last
        // slice left it so the next run segment resumes instead of
        // restarting.  Scrub first — a checkpoint serializes raw payload
        // words, and snapshotting a latent upset would launder it into a
        // clean image (same policy as the runner's own snapshots); an
        // uncorrectable upset just means restart-from-scratch.
        bool image_ok = true;
        if (sim->ecc_enabled()) {
          image_ok = scrub_protected_state(sim->qat(), sim->memory()) ==
                     TrapKind::kNone;
        }
        qj.job.resume_image.clear();
        if (image_ok) {
          try {
            qj.job.resume_image =
                save_checkpoint(sim->cpu(), sim->memory(), sim->qat());
          } catch (const std::exception&) {
            qj.job.resume_image.clear();
          }
        }
      }

      {
        std::lock_guard lk(st.mu);
        st.engine = nullptr;
      }
      // A pooled sim outlives this job: drop the migration guard (it
      // captures this attempt's JobState) before the sim goes back to the
      // cache.  reset() also clears it, but the cached engine must never
      // hold a dangling closure even while idle.
      sim->qat().set_migration_guard(nullptr);
      rep.instructions += rs.instructions;
      rep.cycles += rs.cycles;
      rep.retries += rs.rollbacks + rs.restarts;
      sim->qat().drain_ecc();  // include pending access-path tallies
      const QatStatsSnapshot qs = sim->qat().stats_snapshot();
      rep.qat_ops += qs.ops;
      rep.backend_migrations += qs.backend_migrations;
      rep.ecc_corrected += qs.ecc_corrected + sim->memory().ecc_corrected();
      rep.ecc_detected += qs.ecc_detected + sim->memory().ecc_detected();
      if (rs.gave_up) rep.trap = rs.final_trap;
      run_ok = rs.halted && !rs.gave_up && !rs.stopped;
    }
    // The attempt's sim (and any dense file a migration materialized) is
    // gone; hand its extra reservation back to the budget.
    std::size_t extra = 0;
    {
      std::lock_guard lk(mu_);
      extra = st.extra_reserved;
      st.extra_reserved = 0;
    }
    release_memory(extra, job.tenant);

    if (rs.stopped) {
      if (cancelled()) {
        rep.outcome = JobOutcome::kCancelled;
        return;
      }
      if (past_deadline()) {
        rep.outcome = JobOutcome::kDeadlineExpired;
        return;
      }
      // Supervisor preemption.  Requeue from the snapshot taken above, or
      // quarantine a job that has ping-ponged past its preemption budget —
      // a genuinely wedged program must not bounce forever.
      if (qj.preempt_count >= config_.max_preemptions) {
        rep.outcome = JobOutcome::kQuarantined;
        rep.error = "stalled: no progress within stall_timeout after " +
                    std::to_string(qj.preempt_count) + " preemption(s)";
        {
          std::lock_guard lk(mu_);
          ++tallies_.stall_quarantines;
        }
        return;
      }
      ++qj.preempt_count;
      rep.preemptions = qj.preempt_count;
      qj.requeue = true;
      return;
    }
    if (run_ok) {
      rep.recovered = rs.recovered || attempt > 1;
      rep.outcome = JobOutcome::kCompleted;
      return;
    }
    // The runner gave up: quarantine, or back off and re-run.
    if (attempt == retry_max + 1) {
      rep.outcome = JobOutcome::kQuarantined;
      return;
    }
    ++rep.retries;  // the upcoming re-run
    st.phase.store(JobPhase::kBackoff, std::memory_order_relaxed);
    const auto delay = backoff_delay(backoff, attempt, jitter_rng);
    const auto wake = std::min(qj.deadline, Clock::now() + delay);
    std::unique_lock lk(st.mu);
    st.cv.wait_until(lk, wake, [&] { return cancelled(); });
    lk.unlock();
    rep.backoff_ms += static_cast<double>(delay.count());
  }
}

}  // namespace tangled::serve
