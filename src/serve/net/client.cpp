#include "serve/net/client.hpp"

#include <thread>

namespace tangled::serve::net {

ServeClient::ServeClient(ServeClientConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

ClientResult ServeClient::connect() {
  if (sock_.valid()) return {};
  const unsigned attempts = std::max(1u, config_.connect_attempts);
  std::string err;
  for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
    sock_ = connect_tcp(config_.host, config_.port, config_.connect_timeout,
                        &err);
    if (sock_.valid()) return {};
    if (attempt < attempts) {
      std::this_thread::sleep_for(
          backoff_delay(config_.backoff, attempt, rng_));
    }
  }
  return ClientResult::transport("connect to " + config_.host + ":" +
                                 std::to_string(config_.port) + " failed: " +
                                 err);
}

void ServeClient::disconnect() { sock_.close(); }

ClientResult ServeClient::read_response(Frame* response) {
  const FrameLimits limits{config_.max_frame_bytes, config_.io_timeout,
                           config_.io_timeout};
  for (;;) {
    Frame f;
    const RecvStatus st = recv_frame(sock_.fd(), limits, &f);
    if (st != RecvStatus::kOk) {
      disconnect();
      return ClientResult::transport(std::string("recv failed: ") +
                                     recv_status_name(st));
    }
    if (f.type == MsgType::kReport || f.type == MsgType::kReportBatch) {
      // Async report(s) raced the response; keep them for next_report().
      try {
        pbp::ByteReader r(f.payload);
        if (f.type == MsgType::kReport) {
          reports_.push_back(decode_report(r));
        } else {
          ReportBatch rb = ReportBatch::decode(r);
          for (auto& rep : rb.reports) reports_.push_back(std::move(rep));
        }
      } catch (const std::exception& e) {
        disconnect();
        return ClientResult::transport(std::string("bad report frame: ") +
                                       e.what());
      }
      continue;
    }
    *response = std::move(f);
    return {};
  }
}

template <typename Req>
ClientResult ServeClient::call(MsgType type, const Req& req, Frame* response) {
  if (!sock_.valid()) {
    if (const ClientResult c = connect(); !c.ok) return c;
  }
  if (!send_message(sock_.fd(), type, req, config_.io_timeout)) {
    disconnect();
    return ClientResult::transport("send failed");
  }
  ClientResult r = read_response(response);
  if (!r.ok) return r;
  if (response->type == MsgType::kError) {
    try {
      pbp::ByteReader er(response->payload);
      const ErrorReply e = ErrorReply::decode(er);
      return ClientResult::wire(e.code, e.message);
    } catch (const std::exception& ex) {
      disconnect();
      return ClientResult::transport(std::string("bad error frame: ") +
                                     ex.what());
    }
  }
  return {};
}

std::optional<std::uint64_t> ServeClient::submit(const SubmitRequest& req,
                                                 ClientResult* result) {
  const auto fail = [&](ClientResult r) -> std::optional<std::uint64_t> {
    if (result != nullptr) *result = std::move(r);
    return std::nullopt;
  };
  for (unsigned shed = 0;; ++shed) {
    Frame resp;
    if (ClientResult r = call(MsgType::kSubmit, req, &resp); !r.ok) {
      return fail(std::move(r));
    }
    try {
      if (resp.type == MsgType::kSubmitOk) {
        pbp::ByteReader r(resp.payload);
        const SubmitOk ok = SubmitOk::decode(r);
        if (result != nullptr) *result = {};
        return ok.id;
      }
      if (resp.type == MsgType::kRetryAfter) {
        pbp::ByteReader r(resp.payload);
        const RetryAfter ra = RetryAfter::decode(r);
        if (shed >= config_.submit_retries) {
          return fail(ClientResult::wire(
              WireError::kOverloaded,
              "server still shedding after " +
                  std::to_string(config_.submit_retries) + " retries"));
        }
        // A shed submission was never admitted, so this retry is safe.
        std::this_thread::sleep_for(std::chrono::milliseconds(ra.delay_ms));
        continue;
      }
    } catch (const std::exception& e) {
      disconnect();
      return fail(ClientResult::transport(std::string("bad reply: ") +
                                          e.what()));
    }
    disconnect();
    return fail(ClientResult::transport(
        std::string("unexpected reply ") + msg_type_name(resp.type)));
  }
}

bool ServeClient::submit_batch(const std::vector<JobSpec>& jobs,
                               std::vector<SubmitBatchOk::Item>* items,
                               ClientResult* result) {
  const auto fail = [&](ClientResult r) {
    if (result != nullptr) *result = std::move(r);
    return false;
  };
  SubmitBatchRequest req;
  req.jobs = jobs;
  Frame resp;
  // One round-trip, no auto-retry: a shed item was never admitted, and the
  // caller sees exactly which items to resubmit.  A pre-batch server
  // answers kUnknownType (surfaced via the kError path below) and keeps
  // the connection open, so falling back to per-job submit() is safe.
  if (ClientResult r = call(MsgType::kSubmitBatch, req, &resp); !r.ok) {
    return fail(std::move(r));
  }
  if (resp.type != MsgType::kSubmitBatchOk) {
    disconnect();
    return fail(ClientResult::transport(std::string("unexpected reply ") +
                                        msg_type_name(resp.type)));
  }
  try {
    pbp::ByteReader r(resp.payload);
    SubmitBatchOk ok = SubmitBatchOk::decode(r);
    if (ok.items.size() != jobs.size()) {
      disconnect();
      return fail(ClientResult::transport(
          "batch reply item count mismatch: sent " +
          std::to_string(jobs.size()) + ", got " +
          std::to_string(ok.items.size())));
    }
    if (items != nullptr) *items = std::move(ok.items);
  } catch (const std::exception& e) {
    disconnect();
    return fail(ClientResult::transport(std::string("bad reply: ") +
                                        e.what()));
  }
  if (result != nullptr) *result = {};
  return true;
}

ClientResult ServeClient::cancel(std::uint64_t id, bool* cancelled) {
  Frame resp;
  if (ClientResult r = call(MsgType::kCancel, CancelRequest{id}, &resp);
      !r.ok) {
    return r;
  }
  if (resp.type != MsgType::kCancelOk) {
    disconnect();
    return ClientResult::transport(std::string("unexpected reply ") +
                                   msg_type_name(resp.type));
  }
  try {
    pbp::ByteReader r(resp.payload);
    const CancelOk ok = CancelOk::decode(r);
    if (cancelled != nullptr) *cancelled = ok.cancelled;
  } catch (const std::exception& e) {
    disconnect();
    return ClientResult::transport(std::string("bad reply: ") + e.what());
  }
  return {};
}

ClientResult ServeClient::progress(std::uint64_t id, ProgressOk* out) {
  Frame resp;
  if (ClientResult r = call(MsgType::kProgress, ProgressRequest{id}, &resp);
      !r.ok) {
    return r;
  }
  if (resp.type != MsgType::kProgressOk) {
    disconnect();
    return ClientResult::transport(std::string("unexpected reply ") +
                                   msg_type_name(resp.type));
  }
  try {
    pbp::ByteReader r(resp.payload);
    *out = ProgressOk::decode(r);
  } catch (const std::exception& e) {
    disconnect();
    return ClientResult::transport(std::string("bad reply: ") + e.what());
  }
  return {};
}

namespace {
/// Empty-payload request helper for kStats/kPing-style messages.
struct EmptyPayload {
  void encode(pbp::ByteWriter&) const {}
};
}  // namespace

ClientResult ServeClient::stats(StatsOk* out) {
  Frame resp;
  if (ClientResult r = call(MsgType::kStats, EmptyPayload{}, &resp); !r.ok) {
    return r;
  }
  if (resp.type != MsgType::kStatsOk) {
    disconnect();
    return ClientResult::transport(std::string("unexpected reply ") +
                                   msg_type_name(resp.type));
  }
  try {
    pbp::ByteReader r(resp.payload);
    *out = StatsOk::decode(r);
  } catch (const std::exception& e) {
    disconnect();
    return ClientResult::transport(std::string("bad reply: ") + e.what());
  }
  return {};
}

ClientResult ServeClient::ping() {
  struct Probe {
    std::uint64_t nonce;
    void encode(pbp::ByteWriter& w) const { w.u64(nonce); }
  };
  const std::uint64_t nonce = rng_();
  Frame resp;
  if (ClientResult r = call(MsgType::kPing, Probe{nonce}, &resp); !r.ok) {
    return r;
  }
  if (resp.type != MsgType::kPong) {
    disconnect();
    return ClientResult::transport(std::string("unexpected reply ") +
                                   msg_type_name(resp.type));
  }
  try {
    pbp::ByteReader r(resp.payload);
    if (r.u64() != nonce) {
      disconnect();
      return ClientResult::transport("pong echoed a different nonce");
    }
  } catch (const std::exception& e) {
    disconnect();
    return ClientResult::transport(std::string("bad pong: ") + e.what());
  }
  return {};
}

std::optional<JobReport> ServeClient::next_report(
    std::chrono::milliseconds timeout, ClientResult* result) {
  if (result != nullptr) *result = {};
  if (!reports_.empty()) {
    JobReport rep = std::move(reports_.front());
    reports_.pop_front();
    return rep;
  }
  if (!sock_.valid()) {
    if (result != nullptr) {
      *result = ClientResult::transport("not connected");
    }
    return std::nullopt;
  }
  const FrameLimits limits{config_.max_frame_bytes, timeout,
                           config_.io_timeout};
  Frame f;
  const RecvStatus st = recv_frame(sock_.fd(), limits, &f);
  if (st == RecvStatus::kIdleTimeout) return std::nullopt;  // ok + empty
  if (st != RecvStatus::kOk) {
    disconnect();
    if (result != nullptr) {
      *result = ClientResult::transport(std::string("recv failed: ") +
                                        recv_status_name(st));
    }
    return std::nullopt;
  }
  if (f.type == MsgType::kReportBatch) {
    try {
      pbp::ByteReader r(f.payload);
      ReportBatch rb = ReportBatch::decode(r);
      for (auto& rep : rb.reports) reports_.push_back(std::move(rep));
    } catch (const std::exception& e) {
      disconnect();
      if (result != nullptr) {
        *result = ClientResult::transport(std::string("bad report frame: ") +
                                          e.what());
      }
      return std::nullopt;
    }
    if (reports_.empty()) return std::nullopt;  // malformed-but-empty batch
    JobReport rep = std::move(reports_.front());
    reports_.pop_front();
    return rep;
  }
  if (f.type != MsgType::kReport) {
    // Unsolicited non-report frame outside a call: only the server's
    // draining/overload errors arrive this way.
    disconnect();
    if (result != nullptr) {
      ClientResult r = ClientResult::transport(
          std::string("unexpected frame ") + msg_type_name(f.type));
      if (f.type == MsgType::kError) {
        try {
          pbp::ByteReader er(f.payload);
          const ErrorReply e = ErrorReply::decode(er);
          r = ClientResult::wire(e.code, e.message);
        } catch (const std::exception&) {
        }
      }
      *result = std::move(r);
    }
    return std::nullopt;
  }
  try {
    pbp::ByteReader r(f.payload);
    return decode_report(r);
  } catch (const std::exception& e) {
    disconnect();
    if (result != nullptr) {
      *result = ClientResult::transport(std::string("bad report frame: ") +
                                        e.what());
    }
    return std::nullopt;
  }
}

}  // namespace tangled::serve::net
