// chaos.hpp — a fault-injecting TCP proxy for the transport-chaos suite
// (ISSUE 7).
//
// ChaosProxy sits between ServeClient and NetServer on loopback and mutates
// the byte stream per chunk, with seeded randomness in the spirit of
// arch/fault.hpp: every run is reproducible from (seed, connection index,
// direction).  Per forwarded chunk it may, independently:
//
//   * drop the chunk and kill the connection (p_drop) — torn stream;
//   * truncate the chunk and kill the connection (p_truncate) — torn frame;
//   * delay the chunk (p_delay, delay_ms) — latency / slow peer;
//   * flip one bit (p_bitflip) — the CRC-32 must catch it;
//   * duplicate the chunk (p_duplicate) — stale/replayed bytes; downstream
//     this desynchronizes framing, which the receiver must reject
//     structurally (bad magic), never crash on.
//
// The proxy never parses frames — corruption lands at arbitrary offsets,
// which is exactly what a torn TCP stream looks like.  Stats count what was
// injected so the soak can assert the chaos actually happened.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/net/socket.hpp"

namespace tangled::serve::net {

struct ChaosConfig {
  std::uint16_t listen_port = 0;  // 0 = ephemeral
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;
  std::uint64_t seed = 0xc4a05ULL;
  /// Per-chunk probabilities in [0,1]; evaluated independently per chunk.
  double p_drop = 0.0;
  double p_truncate = 0.0;
  double p_delay = 0.0;
  std::uint32_t delay_ms = 5;
  double p_bitflip = 0.0;
  double p_duplicate = 0.0;
};

struct ChaosStats {
  std::uint64_t connections = 0;
  std::uint64_t chunks_forwarded = 0;
  std::uint64_t drops = 0;
  std::uint64_t truncates = 0;
  std::uint64_t delays = 0;
  std::uint64_t bitflips = 0;
  std::uint64_t duplicates = 0;
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosConfig config);
  ~ChaosProxy();  // stop()

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  bool ok() const { return listener_.valid(); }
  const std::string& error() const { return error_; }
  std::uint16_t port() const { return port_; }
  ChaosStats stats() const;

  void stop();

 private:
  struct Link {
    Socket client;
    Socket upstream;
    std::thread up;    // client → upstream
    std::thread down;  // upstream → client
    std::atomic<bool> dead{false};
  };

  void accept_main();
  /// Pump src → dst, mutating chunks with an RNG seeded from
  /// (seed, conn, direction).  Sets link.dead and shuts both sockets on any
  /// injected kill or natural close.
  void pump(Link& link, Socket& src, Socket& dst, std::uint64_t rng_seed);

  ChaosConfig config_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::string error_;
  WakePipe wake_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex links_mu_;
  std::list<std::unique_ptr<Link>> links_;
  std::uint64_t next_conn_ = 1;

  mutable std::mutex stats_mu_;
  ChaosStats stats_;
};

}  // namespace tangled::serve::net
