#include "serve/net/chaos.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <random>
#include <vector>

namespace tangled::serve::net {

ChaosProxy::ChaosProxy(ChaosConfig config) : config_(config) {
  listener_ = listen_tcp_loopback(config_.listen_port, &port_, &error_);
  if (!listener_.valid()) return;
  accept_thread_ = std::thread([this] { accept_main(); });
}

ChaosProxy::~ChaosProxy() { stop(); }

ChaosStats ChaosProxy::stats() const {
  std::lock_guard lk(stats_mu_);
  return stats_;
}

void ChaosProxy::stop() {
  if (stopping_.exchange(true)) return;
  wake_.wake();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard lk(links_mu_);
  for (auto& l : links_) {
    l->client.shutdown_both();
    l->upstream.shutdown_both();
  }
  for (auto& l : links_) {
    if (l->up.joinable()) l->up.join();
    if (l->down.joinable()) l->down.join();
  }
  links_.clear();
}

void ChaosProxy::accept_main() {
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) break;
    const int fd = accept_or_wake(listener_.fd(), wake_.read_fd());
    if (fd < 0) break;
    Socket client(fd);
    std::string err;
    Socket upstream =
        connect_tcp(config_.upstream_host, config_.upstream_port,
                    std::chrono::milliseconds{2'000}, &err);
    if (!upstream.valid()) continue;  // upstream gone; drop the client
    std::uint64_t conn = 0;
    {
      std::lock_guard lk(links_mu_);
      conn = next_conn_++;
      // Reap finished links so a long soak doesn't accumulate threads.
      for (auto it = links_.begin(); it != links_.end();) {
        if ((*it)->dead.load(std::memory_order_acquire)) {
          if ((*it)->up.joinable()) (*it)->up.join();
          if ((*it)->down.joinable()) (*it)->down.join();
          it = links_.erase(it);
        } else {
          ++it;
        }
      }
    }
    {
      std::lock_guard slk(stats_mu_);
      ++stats_.connections;
    }
    auto link = std::make_unique<Link>();
    link->client = std::move(client);
    link->upstream = std::move(upstream);
    Link& l = *link;
    {
      std::lock_guard lk(links_mu_);
      links_.push_back(std::move(link));
    }
    l.up = std::thread([this, &l, conn] {
      pump(l, l.client, l.upstream, config_.seed ^ (conn * 2));
    });
    l.down = std::thread([this, &l, conn] {
      pump(l, l.upstream, l.client, config_.seed ^ (conn * 2 + 1));
    });
  }
  listener_.close();
}

void ChaosProxy::pump(Link& link, Socket& src, Socket& dst,
                      std::uint64_t rng_seed) {
  std::mt19937_64 rng(rng_seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<std::uint8_t> buf(4096);
  const auto kill_link = [&] {
    src.shutdown_both();
    dst.shutdown_both();
  };
  for (;;) {
    pollfd p{src.fd(), POLLIN, 0};
    const int rc = ::poll(&p, 1, 250);
    if (rc < 0 && errno == EINTR) continue;
    if (stopping_.load(std::memory_order_acquire)) break;
    if (rc < 0) break;
    if (rc == 0) continue;
    const ssize_t got = ::recv(src.fd(), buf.data(), buf.size(), 0);
    if (got == 0) {
      // Natural half-close: propagate the write-side shutdown so framing
      // errors still surface downstream, then finish.
      ::shutdown(dst.fd(), SHUT_WR);
      break;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    std::size_t n = static_cast<std::size_t>(got);
    bool kill = false;
    if (config_.p_drop > 0 && coin(rng) < config_.p_drop) {
      {
        std::lock_guard slk(stats_mu_);
        ++stats_.drops;
      }
      kill_link();
      break;
    }
    if (config_.p_truncate > 0 && coin(rng) < config_.p_truncate) {
      n = std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
      kill = true;
      std::lock_guard slk(stats_mu_);
      ++stats_.truncates;
    }
    if (config_.p_delay > 0 && coin(rng) < config_.p_delay) {
      {
        std::lock_guard slk(stats_mu_);
        ++stats_.delays;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.delay_ms));
    }
    if (n > 0 && config_.p_bitflip > 0 && coin(rng) < config_.p_bitflip) {
      const std::size_t byte =
          std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
      const unsigned bit = std::uniform_int_distribution<unsigned>(0, 7)(rng);
      buf[byte] ^= static_cast<std::uint8_t>(1u << bit);
      std::lock_guard slk(stats_mu_);
      ++stats_.bitflips;
    }
    const bool dup =
        config_.p_duplicate > 0 && coin(rng) < config_.p_duplicate;
    if (dup) {
      std::lock_guard slk(stats_mu_);
      ++stats_.duplicates;
    }
    const auto deadline = Clock::now() + std::chrono::milliseconds{5'000};
    if (n > 0 && write_all(dst.fd(), buf.data(), n, deadline) !=
                     IoStatus::kOk) {
      break;
    }
    if (dup && n > 0 &&
        write_all(dst.fd(), buf.data(), n, deadline) != IoStatus::kOk) {
      break;
    }
    {
      std::lock_guard slk(stats_mu_);
      ++stats_.chunks_forwarded;
    }
    if (kill) {
      kill_link();
      break;
    }
  }
  link.dead.store(true, std::memory_order_release);
}

}  // namespace tangled::serve::net
