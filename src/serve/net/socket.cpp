#include "serve/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tangled::serve::net {

namespace {

/// Remaining poll budget in ms for `deadline`; -1 = wait forever, clamped so
/// a single poll never exceeds INT_MAX ms.
int poll_budget_ms(Clock::time_point deadline) {
  if (deadline == Clock::time_point::max()) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(std::min<long long>(left.count(), 1 << 30));
}

IoStatus wait_io(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    pollfd p{fd, events, 0};
    const int budget = poll_budget_ms(deadline);
    if (budget == 0) return IoStatus::kTimeout;
    const int rc = ::poll(&p, 1, budget);
    if (rc > 0) return IoStatus::kOk;  // readable/writable OR error/hup —
                                       // let recv/send report the detail
    if (rc == 0) return IoStatus::kTimeout;
    if (errno != EINTR) return IoStatus::kError;
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

WakePipe::WakePipe() {
  if (::pipe(fds_) != 0) {
    fds_[0] = fds_[1] = -1;
    return;
  }
  ::fcntl(fds_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(fds_[1], F_SETFL, O_NONBLOCK);
}

WakePipe::~WakePipe() {
  if (fds_[0] >= 0) ::close(fds_[0]);
  if (fds_[1] >= 0) ::close(fds_[1]);
}

void WakePipe::wake() const {
  const char b = 1;
  // Best effort; a full pipe already guarantees the poller will wake.
  [[maybe_unused]] const auto rc = ::write(fds_[1], &b, 1);
}

void WakePipe::drain() const {
  char buf[64];
  while (::read(fds_[0], buf, sizeof buf) > 0) {
  }
}

IoStatus read_exact(int fd, void* buf, std::size_t n,
                    Clock::time_point deadline) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const IoStatus w = wait_io(fd, POLLIN, deadline);
    if (w != IoStatus::kOk) return w;
    const ssize_t rc = ::recv(fd, p + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) return got == 0 ? IoStatus::kEof : IoStatus::kError;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus write_all(int fd, const void* buf, std::size_t n,
                   Clock::time_point deadline) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const IoStatus w = wait_io(fd, POLLOUT, deadline);
    if (w != IoStatus::kOk) return w;
    const ssize_t rc = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

Socket listen_tcp_loopback(std::uint16_t port, std::uint16_t* bound_port,
                           std::string* err) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    if (err != nullptr) *err = std::strerror(errno);
    return {};
  }
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(s.fd(), 64) != 0) {
    if (err != nullptr) *err = std::strerror(errno);
    return {};
  }
  if (bound_port != nullptr) {
    socklen_t len = sizeof addr;
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      if (err != nullptr) *err = std::strerror(errno);
      return {};
    }
    *bound_port = ntohs(addr.sin_port);
  }
  return s;
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::chrono::milliseconds timeout, std::string* err) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    if (err != nullptr) *err = std::strerror(errno);
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = "bad address '" + host + "'";
    return {};
  }
  const int flags = ::fcntl(s.fd(), F_GETFL, 0);
  ::fcntl(s.fd(), F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    if (err != nullptr) *err = std::strerror(errno);
    return {};
  }
  if (rc != 0) {
    const IoStatus w = wait_io(s.fd(), POLLOUT, Clock::now() + timeout);
    if (w != IoStatus::kOk) {
      if (err != nullptr) {
        *err = w == IoStatus::kTimeout ? "connect timed out"
                                       : std::strerror(errno);
      }
      return {};
    }
    int so_error = 0;
    socklen_t len = sizeof so_error;
    if (::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      if (err != nullptr) {
        *err = std::strerror(so_error != 0 ? so_error : errno);
      }
      return {};
    }
  }
  ::fcntl(s.fd(), F_SETFL, flags);  // back to blocking; I/O is poll-paced
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return s;
}

int accept_or_wake(int listen_fd, int wake_fd) {
  for (;;) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {wake_fd, POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if ((fds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0) return -1;
    if ((fds[0].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) return -1;
    if ((fds[0].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd, nullptr, nullptr);
      if (client >= 0) {
        const int one = 1;
        ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        return client;
      }
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      return -1;
    }
  }
}

// ---------------------------------------------------------------------------
// Framed I/O.

const char* recv_status_name(RecvStatus s) {
  switch (s) {
    case RecvStatus::kOk: return "ok";
    case RecvStatus::kEof: return "eof";
    case RecvStatus::kIdleTimeout: return "idle-timeout";
    case RecvStatus::kStallTimeout: return "stall-timeout";
    case RecvStatus::kIoError: return "io-error";
    case RecvStatus::kBadMagic: return "bad-magic";
    case RecvStatus::kBadVersion: return "bad-version";
    case RecvStatus::kOversized: return "oversized";
    case RecvStatus::kBadCrc: return "bad-crc";
  }
  return "unknown";
}

RecvStatus recv_frame(int fd, const FrameLimits& limits, Frame* out) {
  // Phase 1: wait (idly) for the first byte of a header.
  const IoStatus idle = wait_io(fd, POLLIN, Clock::now() + limits.idle_timeout);
  if (idle == IoStatus::kTimeout) return RecvStatus::kIdleTimeout;
  if (idle != IoStatus::kOk) return RecvStatus::kIoError;

  // Phase 2: once bytes exist, the whole frame must land by this deadline.
  const auto deadline = Clock::now() + limits.frame_timeout;
  std::uint8_t header[kHeaderBytes];
  switch (read_exact(fd, header, kHeaderBytes, deadline)) {
    case IoStatus::kOk:
      break;
    case IoStatus::kEof:
      return RecvStatus::kEof;
    case IoStatus::kTimeout:
      return RecvStatus::kStallTimeout;
    case IoStatus::kError:
      return RecvStatus::kIoError;
  }
  FrameHeader h;
  switch (parse_header(header, limits.max_frame_bytes, &h)) {
    case FrameCheck::kOk:
      break;
    case FrameCheck::kBadMagic:
      return RecvStatus::kBadMagic;
    case FrameCheck::kBadVersion:
      return RecvStatus::kBadVersion;
    case FrameCheck::kOversized:
      return RecvStatus::kOversized;
    case FrameCheck::kBadCrc:
      return RecvStatus::kBadCrc;  // unreachable from parse_header
  }
  out->payload.resize(h.length);
  if (h.length > 0) {
    switch (read_exact(fd, out->payload.data(), h.length, deadline)) {
      case IoStatus::kOk:
        break;
      case IoStatus::kTimeout:
        return RecvStatus::kStallTimeout;
      case IoStatus::kEof:
      case IoStatus::kError:
        return RecvStatus::kIoError;
    }
  }
  if (verify_payload(h, out->payload) != FrameCheck::kOk) {
    return RecvStatus::kBadCrc;
  }
  out->type = static_cast<MsgType>(h.type);
  return RecvStatus::kOk;
}

bool send_frame(int fd, MsgType type, const std::vector<std::uint8_t>& payload,
                std::chrono::milliseconds timeout) {
  const std::vector<std::uint8_t> bytes = encode_frame(type, payload);
  return write_all(fd, bytes.data(), bytes.size(), Clock::now() + timeout) ==
         IoStatus::kOk;
}

}  // namespace tangled::serve::net
