// wire.hpp — the framed binary protocol spoken between tangled_served and
// ServeClient (the ISSUE 7 tentpole).
//
// Every message on the wire is one frame:
//
//   offset  size  field
//   0       4     magic   "TNGW" (0x57474E54 little-endian)
//   4       2     version (kWireVersion; a mismatch is answered with a
//                 structured kBadVersion error, then the connection closes)
//   6       1     type    (MsgType)
//   7       1     reserved (must be 0)
//   8       4     payload length in bytes (bounded by the receiver's
//                 max-frame limit — an oversized declaration is rejected
//                 BEFORE any payload is read, so a hostile peer cannot make
//                 the server allocate from a forged length field)
//   12      4     CRC-32 (IEEE 802.3) of the payload bytes
//   16      n     payload (pbp/serialize.hpp little-endian primitives)
//
// This is the checkpoint-v2 framing discipline (arch/checkpoint.hpp) applied
// to a socket: magic/version/length are validated structurally, the CRC
// rejects bit-flipped payloads, and anything wrong yields a *structured*
// error reply (ErrorReply) followed by connection close — torn, truncated,
// or garbage frames are never partially interpreted.
//
// Requests flow client→server, responses and streamed job reports flow
// server→client.  TCP preserves order, so responses arrive in request
// order; kReport frames are asynchronous and may interleave anywhere after
// their job's admission (receivers must buffer them — ServeClient does).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pbp/serialize.hpp"
#include "serve/job.hpp"
#include "serve/job_server.hpp"

namespace tangled::serve::net {

constexpr std::uint32_t kWireMagic = 0x57474E54u;  // "TNGW" little-endian
/// v2 (ISSUE 8): SubmitRequest carries an idempotency key, JobReport
/// carries key/deduped/resumed, StatsOk carries the durability counters,
/// RetryAfter gained kDurability.
/// v3 (ISSUE 9): SubmitRequest carries tenant + stall_spec, JobReport
/// carries tenant + preemptions, StatsOk carries the governance counters
/// and the health state, RetryAfter gained kTenantQuota.
///
/// Batched submission (ISSUE 10) is a structural extension WITHIN v3, not
/// a version bump: kSubmitBatch/kSubmitBatchOk/kReportBatch are new
/// message types, and the protocol already defines what a v3 peer does
/// with a well-formed frame of a type it does not know — answer
/// kUnknownType and keep the connection.  A v1-style (per-frame) client
/// therefore interoperates with a batch-capable server unchanged, and a
/// batch-capable client can probe: an old server answers kSubmitBatch
/// with kUnknownType, telling it to fall back to per-frame submits.
/// The server only coalesces reports into kReportBatch frames for
/// connections that have sent a kSubmitBatch (proof the peer decodes
/// them).
constexpr std::uint16_t kWireVersion = 3;
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 20;  // 1 MiB

/// Stats snapshots are versioned independently of the frame format so a
/// field can be appended without a wire-version bump (old clients ignore
/// trailing bytes they don't know; new clients check snapshot_version).
/// v4 (ISSUE 10): simulator-pool hit/miss counters and the batched-wire
/// counters, appended after the v3 tail.
constexpr std::uint16_t kStatsSnapshotVersion = 4;

/// Decode-side caps for batch messages: a CRC-clean hostile frame must not
/// make the receiver allocate an absurd vector from a forged count field.
constexpr std::size_t kMaxBatchJobs = 1024;
constexpr std::size_t kMaxBatchReports = 1024;

enum class MsgType : std::uint8_t {
  // Requests (client → server).
  kSubmit = 1,    // SubmitRequest → kSubmitOk | kRetryAfter | kError
  kCancel = 2,    // CancelRequest → kCancelOk
  kProgress = 3,  // ProgressRequest → kProgressOk
  kStats = 4,     // (empty)       → kStatsOk
  kPing = 5,      // opaque bytes  → kPong (echo)
  kSubmitBatch = 6,  // SubmitBatchRequest → kSubmitBatchOk | kError
  // Responses (server → client).
  kSubmitOk = 64,
  kRetryAfter = 65,  // overload shed: try again after the hinted delay
  kCancelOk = 66,
  kProgressOk = 67,
  kStatsOk = 68,
  kError = 69,
  kReport = 70,  // streamed terminal JobReport (async, exactly once per job)
  kPong = 71,
  kSubmitBatchOk = 72,  // per-item admission results, in request order
  kReportBatch = 73,    // several terminal JobReports in one frame
};

const char* msg_type_name(MsgType t);

/// Structured error codes carried in ErrorReply payloads.
enum class WireError : std::uint8_t {
  kNone = 0,
  kBadMagic,        // first 4 bytes were not "TNGW"
  kBadVersion,      // framed correctly but an incompatible protocol version
  kBadCrc,          // payload bits flipped in flight
  kOversized,       // declared payload length exceeds the max-frame limit
  kMalformed,       // CRC-clean payload that does not decode
  kUnknownType,     // well-formed frame with an unassigned type byte
  kShuttingDown,    // server is draining; no new submissions
  kOverloaded,      // connection limit reached
  kBadJob,          // submission rejected (assembly error, bad enum, ...)
  kUnknownJob,      // cancel/progress for an id this server never issued
  kTransport,       // client-side: connect/read/write failure or timeout
};

const char* wire_error_name(WireError e);

// ---------------------------------------------------------------------------
// Frame encode/decode.

struct Frame {
  MsgType type = MsgType::kPing;
  std::vector<std::uint8_t> payload;
};

/// Status of header validation / payload verification.  The subset of
/// RecvStatus (socket.hpp) that the codec itself can decide.
enum class FrameCheck : std::uint8_t {
  kOk,
  kBadMagic,
  kBadVersion,
  kOversized,
  kBadCrc,
};

struct FrameHeader {
  std::uint8_t type = 0;
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
};

/// Serialize a complete frame (header + payload).
std::vector<std::uint8_t> encode_frame(MsgType type,
                                       const std::vector<std::uint8_t>& payload);

/// Validate the fixed 16-byte header.  On kOk, `out` carries the declared
/// type/length/crc; the caller then reads `length` payload bytes and calls
/// verify_payload.  `max_frame` bounds length *before* any allocation.
FrameCheck parse_header(const std::uint8_t header[kHeaderBytes],
                        std::size_t max_frame, FrameHeader* out);

/// CRC the received payload against the header's declared CRC.
FrameCheck verify_payload(const FrameHeader& header,
                          const std::vector<std::uint8_t>& payload);

// ---------------------------------------------------------------------------
// Message payloads.  Each encodes with pbp::ByteWriter and decodes with
// pbp::ByteReader; decode() throws std::runtime_error on truncated or
// out-of-range fields (the transport maps that to a kMalformed error reply).

/// The submit payload IS a serve::JobSpec (serve/job.hpp owns the field
/// set, the codec, and to_job(): one durability format shared by the wire
/// and the journal's admit records — including the idempotency key that
/// makes resubmission after a crash exactly-once).
struct SubmitRequest : JobSpec {
  void encode(pbp::ByteWriter& w) const { serialize(w); }
  static SubmitRequest decode(pbp::ByteReader& r) {
    return SubmitRequest{JobSpec::deserialize(r)};
  }
};

struct SubmitOk {
  std::uint64_t id = 0;
  void encode(pbp::ByteWriter& w) const;
  static SubmitOk decode(pbp::ByteReader& r);
};

/// Overload shedding: the request was NOT admitted (and never will be as a
/// side effect); retry after the hinted delay.
struct RetryAfter {
  enum class Reason : std::uint8_t {
    kQueueFull = 0,       // JobServer bounded queue rejected (try_submit)
    kConnInFlight = 1,    // per-connection in-flight cap reached
    kDurability = 2,      // journal degraded (shed) or the idempotency key
                          // is mid-admission elsewhere — retry shortly
    kTenantQuota = 3,     // the submitting tenant is over its queue quota;
                          // other tenants are unaffected — back off
  };
  std::uint32_t delay_ms = 25;
  Reason reason = Reason::kQueueFull;
  void encode(pbp::ByteWriter& w) const;
  static RetryAfter decode(pbp::ByteReader& r);
};

struct CancelRequest {
  std::uint64_t id = 0;
  void encode(pbp::ByteWriter& w) const;
  static CancelRequest decode(pbp::ByteReader& r);
};

struct CancelOk {
  bool cancelled = false;  // false: already terminal or unknown id
  void encode(pbp::ByteWriter& w) const;
  static CancelOk decode(pbp::ByteReader& r);
};

struct ProgressRequest {
  std::uint64_t id = 0;
  void encode(pbp::ByteWriter& w) const;
  static ProgressRequest decode(pbp::ByteReader& r);
};

struct ProgressOk {
  bool known = false;
  std::uint8_t phase = 0;  // serve::JobPhase
  std::uint32_t attempts = 0;
  std::uint64_t qat_ops = 0;
  std::uint64_t ecc_corrected = 0;
  std::uint64_t ecc_detected = 0;
  void encode(pbp::ByteWriter& w) const;
  static ProgressOk decode(pbp::ByteReader& r);
};

struct ErrorReply {
  WireError code = WireError::kNone;
  std::string message;
  void encode(pbp::ByteWriter& w) const;
  static ErrorReply decode(pbp::ByteReader& r);
};

/// One frame carrying many SubmitRequests (ISSUE 10).  Admission semantics
/// per item are identical to a kSubmit: each job is individually admitted,
/// shed, or rejected, and the per-item results come back in request order
/// in one SubmitBatchOk.  Admitted jobs still stream exactly one terminal
/// report each (possibly coalesced into kReportBatch frames).
struct SubmitBatchRequest {
  std::vector<JobSpec> jobs;
  void encode(pbp::ByteWriter& w) const;
  static SubmitBatchRequest decode(pbp::ByteReader& r);
};

/// Per-item admission results for one SubmitBatchRequest, aligned with the
/// request order.  Exactly one of the three shapes applies per item:
/// kAdmitted carries the job id; kRetry carries the RetryAfter hint (the
/// job was NOT admitted — resubmitting it cannot duplicate); kError
/// carries the WireError code + message (bad job, draining, ...).
struct SubmitBatchOk {
  enum class Status : std::uint8_t { kAdmitted = 0, kRetry = 1, kError = 2 };
  struct Item {
    Status status = Status::kError;
    std::uint64_t id = 0;          // kAdmitted
    std::uint32_t delay_ms = 0;    // kRetry
    std::uint8_t reason = 0;       // kRetry: RetryAfter::Reason
    std::uint8_t code = 0;         // kError: WireError
    std::string message;           // kError detail
  };
  std::vector<Item> items;
  void encode(pbp::ByteWriter& w) const;
  static SubmitBatchOk decode(pbp::ByteReader& r);
};

/// Several terminal JobReports in one frame: the report pump coalesces
/// every already-terminal consecutive report owed to a batch-capable
/// connection, amortizing the per-frame syscall + header tax.  Order is
/// still admission order; exactly-once still holds per report.
struct ReportBatch {
  std::vector<JobReport> reports;
  void encode(pbp::ByteWriter& w) const;
  static ReportBatch decode(pbp::ByteReader& r);
};

/// The health/metrics snapshot: ServerStats + ECC upset counters + the net
/// front door's own counters, versioned (kStatsSnapshotVersion).
struct StatsOk {
  std::uint16_t snapshot_version = kStatsSnapshotVersion;
  ServerStats jobs;
  std::uint64_t ecc_corrected = 0;
  std::uint64_t ecc_detected = 0;
  // Net front-door counters (NetStats mirror).
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t frames_tx = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t stall_closes = 0;
  std::uint64_t retry_after_sent = 0;
  std::uint64_t reports_streamed = 0;
  std::uint64_t reports_orphaned = 0;
  bool draining = false;
  // Batched-wire counters (snapshot v4; net front-door side).
  std::uint64_t batch_submits = 0;   // kSubmitBatch frames handled
  std::uint64_t batch_jobs = 0;      // jobs admitted through batches
  std::uint64_t batch_reports = 0;   // kReportBatch frames sent
  void encode(pbp::ByteWriter& w) const;
  static StatsOk decode(pbp::ByteReader& r);
  // Durability counters (snapshot v2, appended; mirrors ServerStats).
  // Encoded from/into the `jobs` member — listed here as documentation of
  // the on-wire order: jobs_recovered, journal_replays, journal_bytes,
  // reports_deduped, journal_shed.
  // Governance counters (snapshot v3, appended after the v2 tail; also
  // encoded from/into `jobs`): stalls_detected, preemptions,
  // stall_quarantines, tenant_sheds, health (u8 HealthState).
  // Pooling + batching counters (snapshot v4, appended after the v3 tail):
  // jobs.sim_pool_hits, jobs.sim_pool_misses, then the three net-side
  // batch counters above.
};

/// JobReport ↔ kReport payload.
void encode_report(const JobReport& rep, pbp::ByteWriter& w);
JobReport decode_report(pbp::ByteReader& r);

/// Convenience: encode a payload struct straight into a framed byte vector.
template <typename T>
std::vector<std::uint8_t> encode_message(MsgType type, const T& msg) {
  pbp::ByteWriter w;
  msg.encode(w);
  return encode_frame(type, w.bytes());
}

}  // namespace tangled::serve::net
