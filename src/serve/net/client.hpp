// client.hpp — ServeClient, the deadline/retry/backoff TCP client for the
// tangled_served wire protocol (ISSUE 7).
//
// The client owns one connection and layers three robustness mechanisms on
// top of the raw socket:
//
//   * timeouts everywhere: connect_timeout bounds the TCP handshake,
//     io_timeout bounds every framed read and write — no call into
//     ServeClient blocks longer than its budget;
//   * reconnect with capped exponential backoff + jitter (serve/backoff.hpp,
//     the same policy the JobServer uses for retries): connect() makes up to
//     connect_attempts tries, sleeping backoff_delay between them.  The
//     jitter RNG is seeded from config.seed, so tests can pin schedules;
//   * overload cooperation: submit() honours kRetryAfter replies by sleeping
//     the server's hinted delay and retrying (up to submit_retries times).
//     A shed submission was never admitted server-side, so the retry cannot
//     duplicate a job.
//
// kReport frames are asynchronous: the server streams each job's terminal
// report whenever it finishes, so a report may arrive between a request and
// its response.  ServeClient buffers any kReport it encounters while waiting
// for a response; next_report() serves the buffer first, then reads from the
// socket.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "serve/backoff.hpp"
#include "serve/net/socket.hpp"
#include "serve/net/wire.hpp"

namespace tangled::serve::net {

struct ServeClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::chrono::milliseconds connect_timeout{1'000};
  /// Per-frame read/write budget for every request/response exchange.
  std::chrono::milliseconds io_timeout{5'000};
  /// Total connect() tries (1 = no retry).
  unsigned connect_attempts = 5;
  BackoffPolicy backoff;
  std::uint64_t seed = 0xc11e5eedULL;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// How many kRetryAfter sheds submit() absorbs before giving up.
  unsigned submit_retries = 8;
};

/// Outcome of one client call.  ok == false carries the failure: a wire
/// error the server sent (its code/message) or WireError::kTransport for
/// connect/read/write failures and timeouts.
struct ClientResult {
  bool ok = true;
  WireError code = WireError::kNone;
  std::string message;

  static ClientResult transport(std::string msg) {
    return {false, WireError::kTransport, std::move(msg)};
  }
  static ClientResult wire(WireError code, std::string msg) {
    return {false, code, std::move(msg)};
  }
};

class ServeClient {
 public:
  explicit ServeClient(ServeClientConfig config = {});

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Establish the connection, retrying with jittered backoff.  Idempotent
  /// while connected.  Returns a transport error after the last attempt.
  ClientResult connect();
  bool connected() const { return sock_.valid(); }
  void disconnect();

  /// Submit a job; honours kRetryAfter by sleeping the hinted delay and
  /// retrying.  Returns the server-issued job id, or nullopt with the
  /// failure in *result (never admitted twice: a shed submit was not
  /// admitted at all).
  std::optional<std::uint64_t> submit(const SubmitRequest& req,
                                      ClientResult* result = nullptr);
  /// Submit many jobs in ONE round-trip (kSubmitBatch).  On success *items
  /// holds the per-job admission results aligned with `jobs` — kAdmitted
  /// items carry ids, kRetry/kError items were NOT admitted and are NOT
  /// auto-retried (the caller decides which sheds are worth resubmitting).
  /// After the first submit_batch the server may coalesce this connection's
  /// reports into kReportBatch frames; next_report() handles both shapes.
  /// Against a pre-batch server the call fails with WireError::kUnknownType
  /// and the connection stays usable — fall back to per-job submit().
  bool submit_batch(const std::vector<JobSpec>& jobs,
                    std::vector<SubmitBatchOk::Item>* items,
                    ClientResult* result = nullptr);
  /// Cooperative cancel; *cancelled reports whether the job was still live.
  ClientResult cancel(std::uint64_t id, bool* cancelled = nullptr);
  ClientResult progress(std::uint64_t id, ProgressOk* out);
  ClientResult stats(StatsOk* out);
  /// Round-trip an opaque payload (liveness probe); checks the echo.
  ClientResult ping();

  /// Next streamed JobReport: buffered ones first, then the socket (waiting
  /// up to `timeout`).  nullopt = no report within the timeout, or the
  /// connection failed (*result distinguishes: ok == true means timeout).
  std::optional<JobReport> next_report(std::chrono::milliseconds timeout,
                                       ClientResult* result = nullptr);
  /// Reports already received and buffered (no socket read).
  std::size_t buffered_reports() const { return reports_.size(); }

  const ServeClientConfig& config() const { return config_; }

 private:
  /// Send `req` as `type`, then read frames until a non-kReport arrives
  /// (buffering reports).  Transport failures disconnect and return an
  /// error; a kError reply is surfaced as its wire code.
  template <typename Req>
  ClientResult call(MsgType type, const Req& req, Frame* response);
  ClientResult read_response(Frame* response);

  ServeClientConfig config_;
  Socket sock_;
  std::mt19937_64 rng_;
  std::deque<JobReport> reports_;
};

}  // namespace tangled::serve::net
