#include "serve/net/server.hpp"

#include <poll.h>
#include <signal.h>

#include <cassert>
#include <vector>

namespace tangled::serve::net {

namespace {

/// Signal plumbing for install_signal_drain: the handler only write(2)s to
/// a pipe (async-signal-safe); a watcher thread turns that into
/// begin_drain().  File-scope because sigaction handlers carry no context.
std::atomic<int> g_signal_pipe_wr{-1};
struct sigaction g_old_sigterm;
struct sigaction g_old_sigint;

void drain_signal_handler(int) {
  const int fd = g_signal_pipe_wr.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char b = 1;
    [[maybe_unused]] const auto rc = ::write(fd, &b, 1);
  }
}

}  // namespace

NetServer::NetServer(NetServerConfig config)
    : config_(config), jobs_(config.jobs) {
  listener_ = listen_tcp_loopback(config_.port, &port_, &error_);
  if (!listener_.valid()) return;
  accept_thread_ = std::thread([this] { accept_main(); });
}

NetServer::~NetServer() { stop(); }

NetStats NetServer::net_stats() const {
  std::lock_guard lk(stats_mu_);
  NetStats s = stats_;
  return s;
}

void NetServer::begin_drain() {
  draining_.store(true, std::memory_order_release);
  accept_wake_.wake();
  // Wake wait_drained() callers blocked on the draining_ predicate.
  { std::lock_guard lk(conns_mu_); }
  conns_cv_.notify_all();
}

void NetServer::wait_drained() {
  {
    std::unique_lock lk(conns_mu_);
    conns_cv_.wait(lk, [&] {
      if (!draining_.load(std::memory_order_acquire)) return false;
      for (const auto& c : conns_) {
        if (c->done.load(std::memory_order_acquire)) continue;
        std::lock_guard clk(c->mu);
        if (!c->pending.empty()) return false;
      }
      return true;
    });
  }
  std::lock_guard lifecycle(lifecycle_mu_);
  if (joined_.load(std::memory_order_acquire)) return;
  // Every connection-admitted job's report has been flushed (or its
  // connection died and the job was harvested); now drain the JobServer
  // itself and tear the transport down.
  jobs_.shutdown(/*drain=*/true);
  stopping_.store(true, std::memory_order_release);
  // Join the accept thread FIRST: once it is gone no new connection can be
  // mid-setup, so join_all_conns sees a stable population.
  accept_wake_.wake();
  if (accept_thread_.joinable()) accept_thread_.join();
  join_all_conns();
  if (signals_installed_) {
    ::sigaction(SIGTERM, &g_old_sigterm, nullptr);
    ::sigaction(SIGINT, &g_old_sigint, nullptr);
    g_signal_pipe_wr.store(-1, std::memory_order_relaxed);
    signal_exit_.store(true, std::memory_order_release);
    signal_wake_.wake();
    if (signal_thread_.joinable()) signal_thread_.join();
    signals_installed_ = false;
  }
  joined_.store(true, std::memory_order_release);
}

void NetServer::stop() {
  if (joined_.load(std::memory_order_acquire)) return;
  begin_drain();
  // Hard path: cancel every unflushed job so no pump blocks on a
  // still-running submission, then close the sockets under the waiters.
  {
    std::lock_guard lk(conns_mu_);
    for (auto& c : conns_) {
      std::vector<JobServer::JobId> pending;
      {
        std::lock_guard clk(c->mu);
        c->closing = true;
        pending.assign(c->pending.begin(), c->pending.end());
      }
      for (const auto id : pending) jobs_.cancel(id);
      c->cv.notify_all();
      c->sock.shutdown_both();
    }
  }
  conns_cv_.notify_all();
  wait_drained();
}

void NetServer::install_signal_drain() {
  std::lock_guard lifecycle(lifecycle_mu_);
  if (signals_installed_) return;
  g_signal_pipe_wr.store(signal_wake_.write_fd(), std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = drain_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, &g_old_sigterm);
  ::sigaction(SIGINT, &sa, &g_old_sigint);
  signal_thread_ = std::thread([this] {
    for (;;) {
      pollfd p{signal_wake_.read_fd(), POLLIN, 0};
      const int rc = ::poll(&p, 1, -1);
      if (rc < 0 && errno == EINTR) continue;
      signal_wake_.drain();
      if (signal_exit_.load(std::memory_order_acquire) || rc < 0) return;
      begin_drain();
    }
  });
  signals_installed_ = true;
}

// ---------------------------------------------------------------------------
// Accept loop.

void NetServer::accept_main() {
  for (;;) {
    if (draining_.load(std::memory_order_acquire)) break;
    const int fd = accept_or_wake(listener_.fd(), accept_wake_.read_fd());
    if (fd < 0) {
      if (draining_.load(std::memory_order_acquire)) break;
      accept_wake_.drain();
      continue;
    }
    Socket sock(fd);
    if (draining_.load(std::memory_order_acquire)) {
      // Raced a drain: refuse politely.
      send_message(sock.fd(), MsgType::kError,
                   ErrorReply{WireError::kShuttingDown, "draining"},
                   config_.write_timeout);
      continue;
    }
    reap_finished_conns();
    {
      std::lock_guard slk(stats_mu_);
      ++stats_.connections_accepted;
    }
    bool over = false;
    {
      std::lock_guard lk(conns_mu_);
      over = conns_.size() >= config_.max_connections;
    }
    if (over) {
      send_message(sock.fd(), MsgType::kError,
                   ErrorReply{WireError::kOverloaded, "connection limit"},
                   config_.write_timeout);
      std::lock_guard slk(stats_mu_);
      ++stats_.connections_shed;
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->sock = std::move(sock);
    Conn& c = *conn;
    {
      std::lock_guard lk(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    {
      std::lock_guard slk(stats_mu_);
      ++stats_.connections_active;
    }
    c.reader = std::thread([this, &c] { reader_main(c); });
    c.pump = std::thread([this, &c] { pump_main(c); });
  }
  listener_.close();
}

void NetServer::reap_finished_conns() {
  // Move finished conns out under the lock, join OUTSIDE it: the pump's
  // last act is a notify that itself takes conns_mu_, so joining while
  // holding the lock would deadlock.
  std::vector<std::unique_ptr<Conn>> finished;
  {
    std::lock_guard lk(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& c : finished) {
    if (c->reader.joinable()) c->reader.join();
    if (c->pump.joinable()) c->pump.join();
    std::lock_guard slk(stats_mu_);
    --stats_.connections_active;
  }
}

void NetServer::join_all_conns() {
  for (;;) {
    std::unique_ptr<Conn> victim;
    {
      std::lock_guard lk(conns_mu_);
      if (conns_.empty()) return;
      victim = std::move(conns_.front());
      conns_.pop_front();
      std::lock_guard slk(stats_mu_);
      --stats_.connections_active;
    }
    {
      std::lock_guard clk(victim->mu);
      victim->closing = true;
    }
    victim->cv.notify_all();
    victim->sock.shutdown_both();  // wakes a reader blocked in poll
    if (victim->reader.joinable()) victim->reader.join();
    if (victim->pump.joinable()) victim->pump.join();
  }
}

// ---------------------------------------------------------------------------
// Per-connection reader: parse frames, answer requests, classify abuse.

void NetServer::reader_main(Conn& c) {
  const FrameLimits limits{config_.max_frame_bytes, config_.idle_timeout,
                           config_.frame_timeout};
  const auto bump = [this](std::uint64_t NetStats::* field) {
    std::lock_guard slk(stats_mu_);
    ++(stats_.*field);
  };
  bool alive = true;
  while (alive) {
    {
      std::lock_guard clk(c.mu);
      if (c.closing) break;
    }
    Frame frame;
    const RecvStatus st = recv_frame(c.sock.fd(), limits, &frame);
    switch (st) {
      case RecvStatus::kOk:
        bump(&NetStats::frames_rx);
        handle_frame(c, frame);
        break;
      case RecvStatus::kIdleTimeout: {
        // Quiet is fine while reports are owed or a drain is flushing;
        // otherwise the connection is parked and gets closed.
        bool has_business = draining_.load(std::memory_order_acquire);
        if (!has_business) {
          std::lock_guard clk(c.mu);
          has_business = !c.pending.empty();
        }
        if (!has_business) {
          bump(&NetStats::stall_closes);
          alive = false;
        }
        break;
      }
      case RecvStatus::kEof:
        alive = false;
        break;
      case RecvStatus::kStallTimeout:
        // Slow loris: a frame began and stalled.  Close without ceremony —
        // the peer is not reading errors either.
        bump(&NetStats::stall_closes);
        alive = false;
        break;
      case RecvStatus::kIoError:
        bump(&NetStats::protocol_errors);
        alive = false;
        break;
      case RecvStatus::kBadMagic:
        bump(&NetStats::protocol_errors);
        send_error(c, WireError::kBadMagic, "not a TNGW frame");
        alive = false;
        break;
      case RecvStatus::kBadVersion:
        bump(&NetStats::protocol_errors);
        send_error(c, WireError::kBadVersion,
                   "server speaks wire version " +
                       std::to_string(kWireVersion));
        alive = false;
        break;
      case RecvStatus::kOversized:
        bump(&NetStats::protocol_errors);
        send_error(c, WireError::kOversized,
                   "frame exceeds " + std::to_string(config_.max_frame_bytes) +
                       " bytes");
        alive = false;
        break;
      case RecvStatus::kBadCrc:
        bump(&NetStats::protocol_errors);
        send_error(c, WireError::kBadCrc, "payload CRC mismatch");
        alive = false;
        break;
    }
  }
  // Reader gone ⇒ nobody can cancel or extend this connection's work:
  // cancel whatever is still unreported so the pump (and a drain) can
  // finish in bounded time.  Reports are still flushed best-effort — a
  // half-closed peer that keeps reading sees its jobs terminate cancelled.
  std::vector<JobServer::JobId> pending;
  {
    std::lock_guard clk(c.mu);
    c.closing = true;
    pending.assign(c.pending.begin(), c.pending.end());
  }
  for (const auto id : pending) jobs_.cancel(id);
  c.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Request handling.

void NetServer::handle_frame(Conn& c, const Frame& frame) {
  try {
    switch (frame.type) {
      case MsgType::kSubmit:
        handle_submit(c, frame);
        return;
      case MsgType::kSubmitBatch:
        handle_submit_batch(c, frame);
        return;
      case MsgType::kCancel: {
        pbp::ByteReader r(frame.payload);
        const CancelRequest req = CancelRequest::decode(r);
        send_reply(c, MsgType::kCancelOk, CancelOk{jobs_.cancel(req.id)});
        return;
      }
      case MsgType::kProgress: {
        pbp::ByteReader r(frame.payload);
        const ProgressRequest req = ProgressRequest::decode(r);
        ProgressOk out;
        if (const auto p = jobs_.progress(req.id)) {
          out.known = true;
          out.phase = static_cast<std::uint8_t>(p->phase);
          out.attempts = p->attempts;
          out.qat_ops = p->qat.ops;
          out.ecc_corrected = p->qat.ecc_corrected;
          out.ecc_detected = p->qat.ecc_detected;
        }
        send_reply(c, MsgType::kProgressOk, out);
        return;
      }
      case MsgType::kStats:
        send_reply(c, MsgType::kStatsOk, stats_snapshot());
        return;
      case MsgType::kPing: {
        std::lock_guard wlk(c.write_mu);
        if (send_frame(c.sock.fd(), MsgType::kPong, frame.payload,
                       config_.write_timeout)) {
          std::lock_guard slk(stats_mu_);
          ++stats_.frames_tx;
        }
        return;
      }
      default:
        // Unknown-but-well-formed: answer structurally and keep the
        // connection (a newer client may probe for optional messages).
        send_error(c, WireError::kUnknownType,
                   "unknown message type " +
                       std::to_string(static_cast<unsigned>(frame.type)));
        return;
    }
  } catch (const std::exception& e) {
    // CRC-clean payload that does not decode: a buggy or hostile peer.
    {
      std::lock_guard slk(stats_mu_);
      ++stats_.protocol_errors;
    }
    send_error(c, WireError::kMalformed, e.what());
    std::lock_guard clk(c.mu);
    c.closing = true;
  }
}

std::uint32_t NetServer::shed_delay_ms() const {
  // Brownout-aware backpressure: the sicker the server, the longer the
  // hinted retry delay, so a polite client herd thins itself out before
  // the overload becomes an outage (healthy 1x, browning-out 4x,
  // degraded 16x).
  switch (jobs_.health()) {
    case HealthState::kBrowningOut:
      return config_.retry_after_ms * 4;
    case HealthState::kDegraded:
      return config_.retry_after_ms * 16;
    case HealthState::kHealthy:
      break;
  }
  return config_.retry_after_ms;
}

void NetServer::handle_submit(Conn& c, const Frame& frame) {
  pbp::ByteReader r(frame.payload);
  const SubmitRequest req = SubmitRequest::decode(r);

  if (draining_.load(std::memory_order_acquire)) {
    {
      std::lock_guard slk(stats_mu_);
      ++stats_.submits_rejected;
    }
    send_error(c, WireError::kShuttingDown, "server is draining");
    return;
  }
  bool over_cap = false;
  {
    std::lock_guard clk(c.mu);
    over_cap = c.pending.size() >= config_.max_inflight_per_conn;
  }
  if (over_cap) {
    // Per-connection overload: shed with a hint, never queue unbounded
    // report obligations for one peer.
    {
      std::lock_guard slk(stats_mu_);
      ++stats_.retry_after_sent;
    }
    send_reply(c, MsgType::kRetryAfter,
               RetryAfter{shed_delay_ms(), RetryAfter::Reason::kConnInFlight});
    return;
  }

  std::string reason;
  std::optional<JobServer::JobId> id;
  if (config_.submit_wait.count() > 0) {
    id = jobs_.submit_spec_for(static_cast<const JobSpec&>(req),
                               config_.submit_wait, &reason);
  } else {
    id = jobs_.try_submit_spec(static_cast<const JobSpec&>(req), &reason);
  }
  if (!id) {
    if (reason == "queue-full") {
      {
        std::lock_guard slk(stats_mu_);
        ++stats_.retry_after_sent;
      }
      send_reply(c, MsgType::kRetryAfter,
                 RetryAfter{shed_delay_ms(), RetryAfter::Reason::kQueueFull});
    } else if (reason == "tenant-over-quota") {
      // Per-tenant shed: this tenant's queue quota is full; the server has
      // room for everyone else, so the hint only needs to thin THIS flood.
      {
        std::lock_guard slk(stats_mu_);
        ++stats_.retry_after_sent;
      }
      send_reply(c, MsgType::kRetryAfter,
                 RetryAfter{shed_delay_ms(), RetryAfter::Reason::kTenantQuota});
    } else if (reason == "journal-unavailable" ||
               reason == "duplicate-pending") {
      // Durability shed: either the journal degraded (new admissions are
      // refused until the operator restarts with a healthy disk) or the
      // idempotency key is mid-admission on another connection (a retry
      // dedups onto the real id).
      {
        std::lock_guard slk(stats_mu_);
        ++stats_.retry_after_sent;
      }
      send_reply(c, MsgType::kRetryAfter,
                 RetryAfter{shed_delay_ms(), RetryAfter::Reason::kDurability});
    } else if (reason.rfind("bad-job", 0) == 0) {
      {
        std::lock_guard slk(stats_mu_);
        ++stats_.submits_rejected;
      }
      send_error(c, WireError::kBadJob,
                 reason.size() > 9 ? reason.substr(9) : reason);
    } else {
      {
        std::lock_guard slk(stats_mu_);
        ++stats_.submits_rejected;
      }
      send_error(c, WireError::kShuttingDown, "server is draining");
    }
    return;
  }
  {
    std::lock_guard slk(stats_mu_);
    ++stats_.submits_admitted;
  }
  // Enqueue BEFORE the reply so a drain that starts right now already sees
  // this job as owed to the connection (no admitted job slips the flush).
  // The kReport may then legally precede the kSubmitOk on the wire — the
  // client buffers reports while waiting for a response.
  {
    std::lock_guard clk(c.mu);
    c.pending.push_back(*id);
  }
  c.cv.notify_all();
  send_reply(c, MsgType::kSubmitOk, SubmitOk{*id});
}

SubmitBatchOk::Item NetServer::admit_spec(Conn& c, const JobSpec& spec) {
  using Status = SubmitBatchOk::Status;
  SubmitBatchOk::Item item;

  if (draining_.load(std::memory_order_acquire)) {
    {
      std::lock_guard slk(stats_mu_);
      ++stats_.submits_rejected;
    }
    item.status = Status::kError;
    item.code = static_cast<std::uint8_t>(WireError::kShuttingDown);
    item.message = "server is draining";
    return item;
  }
  bool over_cap = false;
  {
    std::lock_guard clk(c.mu);
    over_cap = c.pending.size() >= config_.max_inflight_per_conn;
  }
  if (over_cap) {
    // The in-flight cap is re-checked per item: a batch may legally be
    // admitted only up to the cap, with the tail shed kConnInFlight.
    {
      std::lock_guard slk(stats_mu_);
      ++stats_.retry_after_sent;
    }
    item.status = Status::kRetry;
    item.delay_ms = shed_delay_ms();
    item.reason = static_cast<std::uint8_t>(RetryAfter::Reason::kConnInFlight);
    return item;
  }

  std::string reason;
  std::optional<JobServer::JobId> id;
  if (config_.submit_wait.count() > 0) {
    id = jobs_.submit_spec_for(spec, config_.submit_wait, &reason);
  } else {
    id = jobs_.try_submit_spec(spec, &reason);
  }
  if (!id) {
    const auto shed = [&](RetryAfter::Reason why) {
      {
        std::lock_guard slk(stats_mu_);
        ++stats_.retry_after_sent;
      }
      item.status = Status::kRetry;
      item.delay_ms = shed_delay_ms();
      item.reason = static_cast<std::uint8_t>(why);
    };
    if (reason == "queue-full") {
      shed(RetryAfter::Reason::kQueueFull);
    } else if (reason == "tenant-over-quota") {
      shed(RetryAfter::Reason::kTenantQuota);
    } else if (reason == "journal-unavailable" ||
               reason == "duplicate-pending") {
      shed(RetryAfter::Reason::kDurability);
    } else if (reason.rfind("bad-job", 0) == 0) {
      {
        std::lock_guard slk(stats_mu_);
        ++stats_.submits_rejected;
      }
      item.status = Status::kError;
      item.code = static_cast<std::uint8_t>(WireError::kBadJob);
      item.message = reason.size() > 9 ? reason.substr(9) : reason;
    } else {
      {
        std::lock_guard slk(stats_mu_);
        ++stats_.submits_rejected;
      }
      item.status = Status::kError;
      item.code = static_cast<std::uint8_t>(WireError::kShuttingDown);
      item.message = "server is draining";
    }
    return item;
  }
  {
    std::lock_guard slk(stats_mu_);
    ++stats_.submits_admitted;
  }
  // Same ordering rule as handle_submit: owed to the connection BEFORE the
  // reply frame, so a concurrent drain already counts it.
  {
    std::lock_guard clk(c.mu);
    c.pending.push_back(*id);
  }
  item.status = Status::kAdmitted;
  item.id = *id;
  return item;
}

void NetServer::handle_submit_batch(Conn& c, const Frame& frame) {
  pbp::ByteReader r(frame.payload);
  const SubmitBatchRequest req = SubmitBatchRequest::decode(r);
  {
    // Sending kSubmitBatch proves the peer decodes the batch family; from
    // here on the pump may coalesce its reports into kReportBatch frames.
    std::lock_guard clk(c.mu);
    c.batch = true;
  }
  SubmitBatchOk out;
  out.items.reserve(req.jobs.size());
  std::uint64_t admitted = 0;
  for (const JobSpec& spec : req.jobs) {
    out.items.push_back(admit_spec(c, spec));
    if (out.items.back().status == SubmitBatchOk::Status::kAdmitted) {
      ++admitted;
    }
  }
  {
    std::lock_guard slk(stats_mu_);
    ++stats_.batch_submits;
    stats_.batch_jobs += admitted;
  }
  if (admitted > 0) c.cv.notify_all();
  send_reply(c, MsgType::kSubmitBatchOk, out);
}

bool NetServer::send_error(Conn& c, WireError code,
                           const std::string& message) {
  return send_reply(c, MsgType::kError, ErrorReply{code, message});
}

template <typename T>
bool NetServer::send_reply(Conn& c, MsgType type, const T& msg) {
  bool sent = false;
  {
    std::lock_guard wlk(c.write_mu);
    sent = send_message(c.sock.fd(), type, msg, config_.write_timeout);
  }
  if (sent) {
    std::lock_guard slk(stats_mu_);
    ++stats_.frames_tx;
  } else {
    std::lock_guard clk(c.mu);
    c.write_failed = true;
  }
  return sent;
}

// ---------------------------------------------------------------------------
// Report pump: stream each admitted job's terminal report, exactly once,
// in admission order.

void NetServer::pump_main(Conn& c) {
  for (;;) {
    JobServer::JobId id = 0;
    {
      std::unique_lock clk(c.mu);
      c.cv.wait(clk, [&] { return !c.pending.empty() || c.closing; });
      if (c.pending.empty()) break;  // closing && fully flushed
      id = c.pending.front();
    }
    JobReport rep = jobs_.wait(id);
    bool try_send = true;
    bool batch_conn = false;
    std::vector<JobReport> reports;
    reports.push_back(std::move(rep));
    {
      std::lock_guard clk(c.mu);
      try_send = !c.write_failed;
      batch_conn = c.batch;
      if (batch_conn && try_send) {
        // Coalesce: every report next in admission order that is ALREADY
        // terminal rides in the same kReportBatch frame — the pump never
        // waits for more.  Lock order c.mu → JobServer internals is safe;
        // no JobServer path takes a Conn mutex.
        JobReport next;
        while (reports.size() < kMaxBatchReports &&
               reports.size() < c.pending.size() &&
               jobs_.try_report(c.pending[reports.size()], &next)) {
          reports.push_back(std::move(next));
        }
      }
    }
    const std::size_t flushed = reports.size();
    bool sent = false;
    if (try_send) {
      pbp::ByteWriter w;
      MsgType type = MsgType::kReport;
      if (batch_conn) {
        ReportBatch rb;
        rb.reports = std::move(reports);
        rb.encode(w);
        type = MsgType::kReportBatch;
      } else {
        encode_report(reports.front(), w);
      }
      std::lock_guard wlk(c.write_mu);
      // Count the stream BEFORE the bytes can reach the peer, so a client
      // that sees the report and immediately asks for stats gets a snapshot
      // that already includes it; rolled back below if the send fails.
      {
        std::lock_guard slk(stats_mu_);
        ++stats_.frames_tx;
        stats_.reports_streamed += flushed;
        if (batch_conn) ++stats_.batch_reports;
      }
      sent = send_frame(c.sock.fd(), type, w.bytes(), config_.write_timeout);
    }
    std::vector<JobServer::JobId> to_cancel;
    {
      std::lock_guard clk(c.mu);
      assert(c.pending.size() >= flushed && c.pending.front() == id);
      c.pending.erase(c.pending.begin(),
                      c.pending.begin() + static_cast<std::ptrdiff_t>(flushed));
      if (!sent && !c.write_failed) c.write_failed = true;
      if (!sent) {
        // Peer unreachable: cancel the rest so each wait() above returns
        // promptly and the drain path stays bounded.
        to_cancel.assign(c.pending.begin(), c.pending.end());
      }
    }
    for (const auto cancel_id : to_cancel) jobs_.cancel(cancel_id);
    if (!sent) {
      std::lock_guard slk(stats_mu_);
      if (try_send) {  // roll back the optimistic pre-send bump
        --stats_.frames_tx;
        stats_.reports_streamed -= flushed;
        if (batch_conn) --stats_.batch_reports;
      }
      stats_.reports_orphaned += flushed;
    }
    // Wake drain waiters with the conns_mu_ handshake (avoids the lost
    // wakeup between their predicate check and sleep).
    { std::lock_guard lk(conns_mu_); }
    conns_cv_.notify_all();
  }
  // Pump done ⇒ every owed report was flushed or orphaned; close the wire
  // so the peer sees EOF promptly (also wakes a reader still in recv when
  // the close was initiated by stop()).
  c.sock.shutdown_both();
  c.done.store(true, std::memory_order_release);
  { std::lock_guard lk(conns_mu_); }
  conns_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Stats snapshot.

StatsOk NetServer::stats_snapshot() {
  StatsOk s;
  s.jobs = jobs_.stats();
  s.ecc_corrected = s.jobs.ecc_corrected;
  s.ecc_detected = s.jobs.ecc_detected;
  {
    std::lock_guard slk(stats_mu_);
    s.connections_accepted = stats_.connections_accepted;
    s.connections_active = stats_.connections_active;
    s.frames_rx = stats_.frames_rx;
    s.frames_tx = stats_.frames_tx;
    s.protocol_errors = stats_.protocol_errors;
    s.stall_closes = stats_.stall_closes;
    s.retry_after_sent = stats_.retry_after_sent;
    s.reports_streamed = stats_.reports_streamed;
    s.reports_orphaned = stats_.reports_orphaned;
    s.batch_submits = stats_.batch_submits;
    s.batch_jobs = stats_.batch_jobs;
    s.batch_reports = stats_.batch_reports;
  }
  s.draining = draining_.load(std::memory_order_acquire);
  return s;
}

}  // namespace tangled::serve::net
