// socket.hpp — minimal deadline-aware TCP plumbing for the serve net layer.
//
// Everything here is loopback-grade POSIX: RAII fds, non-blocking connect
// with a timeout, poll-driven read/write with absolute deadlines, and framed
// send/recv on top of wire.hpp.  Two properties matter for robustness:
//
//   * every blocking operation has a deadline — a peer that stops reading
//     or writing can stall one connection for at most its timeout, never
//     the process (slow-loris defense);
//   * writes use MSG_NOSIGNAL, so a peer that disappeared mid-stream yields
//     an error return, not a process-killing SIGPIPE.
//
// recv_frame distinguishes "no frame started" (kIdleTimeout — the peer is
// merely quiet, which is fine while it waits for job reports) from "a frame
// started and stalled" (kStallTimeout — the slow-loris signature, answered
// by closing the connection).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "serve/net/wire.hpp"

namespace tangled::serve::net {

using Clock = std::chrono::steady_clock;

/// Move-only RAII file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();
  /// shutdown(SHUT_RDWR): unblocks any thread inside poll/recv/send on this
  /// fd without racing the fd number (close alone can be redistributed).
  void shutdown_both();

 private:
  int fd_ = -1;
};

/// A self-pipe: write() from any thread (or a signal handler — write(2) is
/// async-signal-safe) wakes a poll() that includes read_fd().
class WakePipe {
 public:
  WakePipe();
  ~WakePipe();
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;
  int read_fd() const { return fds_[0]; }
  int write_fd() const { return fds_[1]; }
  void wake() const;
  void drain() const;

 private:
  int fds_[2] = {-1, -1};
};

enum class IoStatus : std::uint8_t { kOk, kEof, kTimeout, kError };

/// Read exactly n bytes by `deadline` (time_point::max() = no deadline).
/// kEof only when the connection closed cleanly at byte 0; a close mid-read
/// is kError (a torn stream).
IoStatus read_exact(int fd, void* buf, std::size_t n, Clock::time_point deadline);
/// Write all n bytes by `deadline`; MSG_NOSIGNAL, partial-write looping.
IoStatus write_all(int fd, const void* buf, std::size_t n,
                   Clock::time_point deadline);

/// Bind + listen on 127.0.0.1:port (port 0 = ephemeral; the bound port is
/// returned through *bound_port).  Invalid socket + *err on failure.
Socket listen_tcp_loopback(std::uint16_t port, std::uint16_t* bound_port,
                           std::string* err);

/// Non-blocking connect with a timeout; the returned socket is blocking.
Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::chrono::milliseconds timeout, std::string* err);

/// Wait for a connection on `listen_fd`, or for `wake_fd` to become
/// readable.  Returns the accepted fd (>= 0), -1 if woken / listener dead.
int accept_or_wake(int listen_fd, int wake_fd);

// ---------------------------------------------------------------------------
// Framed I/O.

enum class RecvStatus : std::uint8_t {
  kOk,
  kEof,           // peer closed cleanly between frames
  kIdleTimeout,   // no frame began within the idle window (not an error)
  kStallTimeout,  // frame began but did not complete in time (slow loris)
  kIoError,       // torn stream / reset
  kBadMagic,
  kBadVersion,
  kOversized,
  kBadCrc,
};

const char* recv_status_name(RecvStatus s);

struct FrameLimits {
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// How long to wait for the FIRST byte of the next frame.
  std::chrono::milliseconds idle_timeout{60'000};
  /// Once a frame has begun, how long it may take to arrive completely.
  std::chrono::milliseconds frame_timeout{5'000};
};

/// Receive one frame.  On kBadMagic/kBadVersion/kOversized the header was
/// read but the payload was NOT (nothing is allocated from a hostile length
/// field); the caller should answer with a structured error and close.
RecvStatus recv_frame(int fd, const FrameLimits& limits, Frame* out);

/// Send one frame within `timeout`.
bool send_frame(int fd, MsgType type, const std::vector<std::uint8_t>& payload,
                std::chrono::milliseconds timeout);

template <typename T>
bool send_message(int fd, MsgType type, const T& msg,
                  std::chrono::milliseconds timeout) {
  pbp::ByteWriter w;
  msg.encode(w);
  return send_frame(fd, type, w.bytes(), timeout);
}

}  // namespace tangled::serve::net
