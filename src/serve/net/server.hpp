// server.hpp — the hardened TCP front door for JobServer (ISSUE 7).
//
// NetServer owns a JobServer and exposes it on a loopback TCP port speaking
// the wire.hpp framed protocol.  The robustness contract:
//
//   * per-connection read deadlines: a frame that starts but stalls
//     (slow loris) closes that connection after frame_timeout, an idle
//     connection with no in-flight jobs closes after idle_timeout — neither
//     ever blocks the accept loop or another connection;
//   * max-frame limit: a forged length field is rejected from the header
//     alone (kOversized error reply, then close) — the server never
//     allocates payload space a hostile peer declared;
//   * torn / garbage / wrong-version frames: structured error reply
//     (best-effort, bounded write), then connection close; the server's
//     protocol_errors counter records the abuse;
//   * overload shedding: a full JobServer queue is answered with
//     kRetryAfter (+ the configured hint) via try_submit / submit_for — the
//     accept loop and reader threads never block on admission;
//   * per-connection in-flight cap: a connection may hold at most
//     max_inflight_per_conn unreported jobs; beyond that, kRetryAfter with
//     Reason::kConnInFlight (layered under the global memory budget, which
//     JobServer already enforces);
//   * exactly-once report streaming: every job admitted through a
//     connection produces exactly one kReport frame on that connection, in
//     admission order, unless the connection dies first — in which case the
//     job is cancelled and its terminal report is harvested server-side
//     (counted in reports_orphaned), so an abusive client can never leak a
//     job or a worker;
//   * graceful drain: begin_drain() (or SIGTERM/SIGINT via
//     install_signal_drain) stops accepting connections and submissions,
//     flushes the reports of every already-admitted job to its connection,
//     then shuts the JobServer down drain=true.  No accepted job is lost.
//
// Threading model: one accept thread, two threads per connection (a reader
// that parses and answers request frames, and a report pump that streams
// terminal JobReports).  Writes to a connection are serialized by a
// per-connection mutex.  This is deliberately thread-per-connection — the
// serve layer's scale target is "hundreds of tenants", not C10K, and the
// model keeps every blocking point deadline-bounded and TSAN-checkable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <thread>

#include "serve/job_server.hpp"
#include "serve/net/socket.hpp"
#include "serve/net/wire.hpp"

namespace tangled::serve::net {

struct NetServerConfig {
  /// Port to bind on 127.0.0.1; 0 = ephemeral (read it back from port()).
  std::uint16_t port = 0;
  JobServerConfig jobs;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Waiting for a frame to BEGIN (quiet client keeping the connection for
  /// streamed reports).
  std::chrono::milliseconds idle_timeout{60'000};
  /// A frame that began must complete within this (slow-loris bound).
  std::chrono::milliseconds frame_timeout{5'000};
  std::chrono::milliseconds write_timeout{5'000};
  /// Bounded admission wait before shedding (0 = shed immediately via
  /// try_submit; >0 = submit_for with this wait).
  std::chrono::milliseconds submit_wait{0};
  /// Delay hint carried in kRetryAfter replies.
  std::uint32_t retry_after_ms = 25;
  unsigned max_inflight_per_conn = 64;
  unsigned max_connections = 256;
};

/// Net-layer counters (monotonic; see also StatsOk for the wire snapshot).
struct NetStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t connections_shed = 0;  // over max_connections
  std::uint64_t frames_rx = 0;
  std::uint64_t frames_tx = 0;
  std::uint64_t protocol_errors = 0;  // bad magic/version/crc/oversized/torn
  std::uint64_t stall_closes = 0;     // slow-loris / idle closes
  std::uint64_t retry_after_sent = 0;
  std::uint64_t submits_admitted = 0;
  std::uint64_t submits_rejected = 0;  // bad-job / shutting-down
  std::uint64_t reports_streamed = 0;
  std::uint64_t reports_orphaned = 0;  // connection died before its report
  // Batched wire (ISSUE 10).
  std::uint64_t batch_submits = 0;  // kSubmitBatch frames handled
  std::uint64_t batch_jobs = 0;     // jobs admitted through batches
  std::uint64_t batch_reports = 0;  // kReportBatch frames sent
};

class NetServer {
 public:
  explicit NetServer(NetServerConfig config = {});
  ~NetServer();  // stop()

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// False if the listen socket could not be bound; error() explains.
  bool ok() const { return listener_.valid(); }
  const std::string& error() const { return error_; }
  std::uint16_t port() const { return port_; }

  JobServer& jobs() { return jobs_; }
  const JobServer& jobs() const { return jobs_; }
  NetStats net_stats() const;
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Stop accepting connections and submissions.  Existing connections keep
  /// streaming reports for their admitted jobs.  Idempotent, signal-safe
  /// enough to be called from the signal watcher thread.
  void begin_drain();

  /// Block until every admitted job's report has been flushed (or its
  /// connection died), then drain the JobServer and join all threads.
  /// Waits for begin_drain() if it has not happened yet.
  void wait_drained();

  /// Hard stop: begin_drain + cancel every unflushed job, then join.
  void stop();

  /// Route SIGTERM/SIGINT to begin_drain() through a self-pipe (the handler
  /// only write(2)s).  Restored on destruction.  One NetServer at a time.
  void install_signal_drain();

 private:
  struct Conn {
    std::uint64_t id = 0;
    Socket sock;
    std::mutex write_mu;  // serializes reader replies vs pump reports

    std::mutex mu;  // guards pending/flags below
    std::condition_variable cv;
    std::deque<JobServer::JobId> pending;  // admitted, report not yet sent
    bool closing = false;       // reader gone or server stopping
    bool write_failed = false;  // peer unreachable; orphan remaining jobs
    /// Peer has sent a kSubmitBatch, proving it decodes the batch message
    /// family: the pump may coalesce its reports into kReportBatch frames.
    bool batch = false;

    std::thread reader;
    std::thread pump;
    std::atomic<bool> done{false};  // both threads finished
  };

  void accept_main();
  void reader_main(Conn& c);
  void pump_main(Conn& c);
  void handle_frame(Conn& c, const Frame& frame);
  void handle_submit(Conn& c, const Frame& frame);
  void handle_submit_batch(Conn& c, const Frame& frame);
  /// One item's admission (shared semantics with handle_submit): admit /
  /// shed / reject the spec and, on admission, append the id to c.pending.
  SubmitBatchOk::Item admit_spec(Conn& c, const JobSpec& spec);
  /// retry_after_ms scaled by server health (1x/4x/16x) so a polite client
  /// herd thins itself before an overload becomes an outage.
  std::uint32_t shed_delay_ms() const;
  bool send_error(Conn& c, WireError code, const std::string& message);
  template <typename T>
  bool send_reply(Conn& c, MsgType type, const T& msg);
  void reap_finished_conns();
  void join_all_conns();
  StatsOk stats_snapshot();

  NetServerConfig config_;
  JobServer jobs_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::string error_;
  WakePipe accept_wake_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> joined_{false};
  std::mutex lifecycle_mu_;  // serializes wait_drained/stop
  std::mutex conns_mu_;
  std::condition_variable conns_cv_;  // flushed-and-drained waiters
  std::list<std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::thread accept_thread_;
  std::thread signal_thread_;
  WakePipe signal_wake_;
  std::atomic<bool> signal_exit_{false};
  bool signals_installed_ = false;

  mutable std::mutex stats_mu_;
  NetStats stats_;
};

}  // namespace tangled::serve::net
