#include "serve/net/wire.hpp"

#include <stdexcept>

namespace tangled::serve::net {

namespace {

void put_string(pbp::ByteWriter& w, const std::string& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  for (const char c : s) w.u8(static_cast<std::uint8_t>(c));
}

std::string get_string(pbp::ByteReader& r, std::size_t max_len = 1 << 20) {
  const std::uint32_t n = r.u32();
  if (n > max_len || n > r.remaining()) {
    throw std::runtime_error("wire: string length out of range");
  }
  std::string s;
  s.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(r.u8()));
  }
  return s;
}

/// Range-checked enum decode: a CRC-clean frame can still carry a value the
/// enum does not define (a hostile or newer peer) — that is kMalformed, not
/// undefined behaviour.
template <typename E>
E checked_enum(std::uint8_t raw, std::uint8_t max, const char* what) {
  if (raw > max) {
    throw std::runtime_error(std::string("wire: out-of-range ") + what);
  }
  return static_cast<E>(raw);
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kSubmit: return "submit";
    case MsgType::kCancel: return "cancel";
    case MsgType::kProgress: return "progress";
    case MsgType::kStats: return "stats";
    case MsgType::kPing: return "ping";
    case MsgType::kSubmitOk: return "submit-ok";
    case MsgType::kRetryAfter: return "retry-after";
    case MsgType::kCancelOk: return "cancel-ok";
    case MsgType::kProgressOk: return "progress-ok";
    case MsgType::kStatsOk: return "stats-ok";
    case MsgType::kError: return "error";
    case MsgType::kReport: return "report";
    case MsgType::kPong: return "pong";
    case MsgType::kSubmitBatch: return "submit-batch";
    case MsgType::kSubmitBatchOk: return "submit-batch-ok";
    case MsgType::kReportBatch: return "report-batch";
  }
  return "unknown";
}

const char* wire_error_name(WireError e) {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadVersion: return "bad-version";
    case WireError::kBadCrc: return "bad-crc";
    case WireError::kOversized: return "oversized";
    case WireError::kMalformed: return "malformed";
    case WireError::kUnknownType: return "unknown-type";
    case WireError::kShuttingDown: return "shutting-down";
    case WireError::kOverloaded: return "overloaded";
    case WireError::kBadJob: return "bad-job";
    case WireError::kUnknownJob: return "unknown-job";
    case WireError::kTransport: return "transport";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(
    MsgType type, const std::vector<std::uint8_t>& payload) {
  pbp::ByteWriter w;
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(0);  // reserved
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(pbp::crc32(payload));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

FrameCheck parse_header(const std::uint8_t header[kHeaderBytes],
                        std::size_t max_frame, FrameHeader* out) {
  pbp::ByteReader r(header, kHeaderBytes);
  if (r.u32() != kWireMagic) return FrameCheck::kBadMagic;
  if (r.u16() != kWireVersion) return FrameCheck::kBadVersion;
  out->type = r.u8();
  r.u8();  // reserved
  out->length = r.u32();
  out->crc = r.u32();
  if (out->length > max_frame) return FrameCheck::kOversized;
  return FrameCheck::kOk;
}

FrameCheck verify_payload(const FrameHeader& header,
                          const std::vector<std::uint8_t>& payload) {
  if (payload.size() != header.length || pbp::crc32(payload) != header.crc) {
    return FrameCheck::kBadCrc;
  }
  return FrameCheck::kOk;
}

// ---------------------------------------------------------------------------
// Small messages.  (SubmitRequest is serve::JobSpec — its codec lives in
// serve/job.cpp, shared with the journal's admit records.)

void SubmitOk::encode(pbp::ByteWriter& w) const { w.u64(id); }
SubmitOk SubmitOk::decode(pbp::ByteReader& r) { return {r.u64()}; }

void RetryAfter::encode(pbp::ByteWriter& w) const {
  w.u32(delay_ms);
  w.u8(static_cast<std::uint8_t>(reason));
}
RetryAfter RetryAfter::decode(pbp::ByteReader& r) {
  RetryAfter m;
  m.delay_ms = r.u32();
  m.reason = checked_enum<Reason>(
      r.u8(), static_cast<std::uint8_t>(Reason::kTenantQuota), "shed reason");
  return m;
}

void CancelRequest::encode(pbp::ByteWriter& w) const { w.u64(id); }
CancelRequest CancelRequest::decode(pbp::ByteReader& r) { return {r.u64()}; }

void CancelOk::encode(pbp::ByteWriter& w) const { w.u8(cancelled ? 1 : 0); }
CancelOk CancelOk::decode(pbp::ByteReader& r) { return {r.u8() != 0}; }

void ProgressRequest::encode(pbp::ByteWriter& w) const { w.u64(id); }
ProgressRequest ProgressRequest::decode(pbp::ByteReader& r) {
  return {r.u64()};
}

void ProgressOk::encode(pbp::ByteWriter& w) const {
  w.u8(known ? 1 : 0);
  w.u8(phase);
  w.u32(attempts);
  w.u64(qat_ops);
  w.u64(ecc_corrected);
  w.u64(ecc_detected);
}
ProgressOk ProgressOk::decode(pbp::ByteReader& r) {
  ProgressOk m;
  m.known = r.u8() != 0;
  m.phase = r.u8();
  m.attempts = r.u32();
  m.qat_ops = r.u64();
  m.ecc_corrected = r.u64();
  m.ecc_detected = r.u64();
  return m;
}

void SubmitBatchRequest::encode(pbp::ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(jobs.size()));
  for (const JobSpec& j : jobs) j.serialize(w);
}
SubmitBatchRequest SubmitBatchRequest::decode(pbp::ByteReader& r) {
  const std::uint32_t n = r.u32();
  if (n > kMaxBatchJobs) {
    throw std::runtime_error("wire: batch job count out of range");
  }
  SubmitBatchRequest m;
  m.jobs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    m.jobs.push_back(JobSpec::deserialize(r));
  }
  return m;
}

void SubmitBatchOk::encode(pbp::ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const Item& it : items) {
    w.u8(static_cast<std::uint8_t>(it.status));
    w.u64(it.id);
    w.u32(it.delay_ms);
    w.u8(it.reason);
    w.u8(it.code);
    put_string(w, it.message);
  }
}
SubmitBatchOk SubmitBatchOk::decode(pbp::ByteReader& r) {
  const std::uint32_t n = r.u32();
  if (n > kMaxBatchJobs) {
    throw std::runtime_error("wire: batch item count out of range");
  }
  SubmitBatchOk m;
  m.items.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Item it;
    it.status = checked_enum<Status>(
        r.u8(), static_cast<std::uint8_t>(Status::kError), "batch status");
    it.id = r.u64();
    it.delay_ms = r.u32();
    it.reason = r.u8();
    it.code = r.u8();
    it.message = get_string(r, 4096);
    m.items.push_back(std::move(it));
  }
  return m;
}

void ReportBatch::encode(pbp::ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(reports.size()));
  for (const JobReport& rep : reports) rep.serialize(w);
}
ReportBatch ReportBatch::decode(pbp::ByteReader& r) {
  const std::uint32_t n = r.u32();
  if (n > kMaxBatchReports) {
    throw std::runtime_error("wire: batch report count out of range");
  }
  ReportBatch m;
  m.reports.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    m.reports.push_back(JobReport::deserialize(r));
  }
  return m;
}

void ErrorReply::encode(pbp::ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(code));
  put_string(w, message);
}
ErrorReply ErrorReply::decode(pbp::ByteReader& r) {
  ErrorReply m;
  m.code = checked_enum<WireError>(
      r.u8(), static_cast<std::uint8_t>(WireError::kTransport), "error code");
  m.message = get_string(r, 4096);
  return m;
}

void StatsOk::encode(pbp::ByteWriter& w) const {
  w.u16(snapshot_version);
  w.u64(jobs.submitted);
  w.u64(jobs.completed);
  w.u64(jobs.quarantined);
  w.u64(jobs.cancelled);
  w.u64(jobs.deadline_expired);
  w.u64(jobs.rejected_memory);
  w.u64(jobs.errors);
  w.u64(jobs.retries);
  w.u64(jobs.migrations_shed);
  w.u64(jobs.queue_full_rejections);
  w.u64(jobs.in_flight_bytes);
  w.u64(jobs.peak_in_flight_bytes);
  w.u64(jobs.queue_depth);
  w.u32(jobs.active_jobs);
  w.u64(ecc_corrected);
  w.u64(ecc_detected);
  w.u64(connections_accepted);
  w.u64(connections_active);
  w.u64(frames_rx);
  w.u64(frames_tx);
  w.u64(protocol_errors);
  w.u64(stall_closes);
  w.u64(retry_after_sent);
  w.u64(reports_streamed);
  w.u64(reports_orphaned);
  w.u8(draining ? 1 : 0);
  // Snapshot v2: durability counters, appended last.
  w.u64(jobs.jobs_recovered);
  w.u64(jobs.journal_replays);
  w.u64(jobs.journal_bytes);
  w.u64(jobs.reports_deduped);
  w.u64(jobs.journal_shed);
  // Snapshot v3: governance counters + health, appended after the v2 tail.
  w.u64(jobs.stalls_detected);
  w.u64(jobs.preemptions);
  w.u64(jobs.stall_quarantines);
  w.u64(jobs.tenant_sheds);
  w.u8(jobs.health);
  // Snapshot v4: pooling + batching counters, appended after the v3 tail.
  w.u64(jobs.sim_pool_hits);
  w.u64(jobs.sim_pool_misses);
  w.u64(batch_submits);
  w.u64(batch_jobs);
  w.u64(batch_reports);
}
StatsOk StatsOk::decode(pbp::ByteReader& r) {
  StatsOk m;
  m.snapshot_version = r.u16();
  m.jobs.submitted = r.u64();
  m.jobs.completed = r.u64();
  m.jobs.quarantined = r.u64();
  m.jobs.cancelled = r.u64();
  m.jobs.deadline_expired = r.u64();
  m.jobs.rejected_memory = r.u64();
  m.jobs.errors = r.u64();
  m.jobs.retries = r.u64();
  m.jobs.migrations_shed = r.u64();
  m.jobs.queue_full_rejections = r.u64();
  m.jobs.in_flight_bytes = static_cast<std::size_t>(r.u64());
  m.jobs.peak_in_flight_bytes = static_cast<std::size_t>(r.u64());
  m.jobs.queue_depth = static_cast<std::size_t>(r.u64());
  m.jobs.active_jobs = r.u32();
  m.ecc_corrected = r.u64();
  m.ecc_detected = r.u64();
  m.connections_accepted = r.u64();
  m.connections_active = r.u64();
  m.frames_rx = r.u64();
  m.frames_tx = r.u64();
  m.protocol_errors = r.u64();
  m.stall_closes = r.u64();
  m.retry_after_sent = r.u64();
  m.reports_streamed = r.u64();
  m.reports_orphaned = r.u64();
  m.draining = r.u8() != 0;
  m.jobs.jobs_recovered = r.u64();
  m.jobs.journal_replays = r.u64();
  m.jobs.journal_bytes = r.u64();
  m.jobs.reports_deduped = r.u64();
  m.jobs.journal_shed = r.u64();
  m.jobs.stalls_detected = r.u64();
  m.jobs.preemptions = r.u64();
  m.jobs.stall_quarantines = r.u64();
  m.jobs.tenant_sheds = r.u64();
  m.jobs.health = r.u8();
  m.jobs.sim_pool_hits = r.u64();
  m.jobs.sim_pool_misses = r.u64();
  m.batch_submits = r.u64();
  m.batch_jobs = r.u64();
  m.batch_reports = r.u64();
  return m;
}

// ---------------------------------------------------------------------------
// JobReport — the codec lives in serve/job.cpp (shared with the journal's
// terminal records); these wrappers keep the wire-facing names.

void encode_report(const JobReport& rep, pbp::ByteWriter& w) {
  rep.serialize(w);
}

JobReport decode_report(pbp::ByteReader& r) {
  return JobReport::deserialize(r);
}

}  // namespace tangled::serve::net
