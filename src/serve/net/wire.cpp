#include "serve/net/wire.hpp"

#include <bit>
#include <stdexcept>

#include "arch/fault.hpp"
#include "asm/assembler.hpp"

namespace tangled::serve::net {

namespace {

void put_string(pbp::ByteWriter& w, const std::string& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  for (const char c : s) w.u8(static_cast<std::uint8_t>(c));
}

std::string get_string(pbp::ByteReader& r, std::size_t max_len = 1 << 20) {
  const std::uint32_t n = r.u32();
  if (n > max_len || n > r.remaining()) {
    throw std::runtime_error("wire: string length out of range");
  }
  std::string s;
  s.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(r.u8()));
  }
  return s;
}

void put_double(pbp::ByteWriter& w, double v) {
  w.u64(std::bit_cast<std::uint64_t>(v));
}

double get_double(pbp::ByteReader& r) {
  return std::bit_cast<double>(r.u64());
}

/// Range-checked enum decode: a CRC-clean frame can still carry a value the
/// enum does not define (a hostile or newer peer) — that is kMalformed, not
/// undefined behaviour.
template <typename E>
E checked_enum(std::uint8_t raw, std::uint8_t max, const char* what) {
  if (raw > max) {
    throw std::runtime_error(std::string("wire: out-of-range ") + what);
  }
  return static_cast<E>(raw);
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kSubmit: return "submit";
    case MsgType::kCancel: return "cancel";
    case MsgType::kProgress: return "progress";
    case MsgType::kStats: return "stats";
    case MsgType::kPing: return "ping";
    case MsgType::kSubmitOk: return "submit-ok";
    case MsgType::kRetryAfter: return "retry-after";
    case MsgType::kCancelOk: return "cancel-ok";
    case MsgType::kProgressOk: return "progress-ok";
    case MsgType::kStatsOk: return "stats-ok";
    case MsgType::kError: return "error";
    case MsgType::kReport: return "report";
    case MsgType::kPong: return "pong";
  }
  return "unknown";
}

const char* wire_error_name(WireError e) {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadVersion: return "bad-version";
    case WireError::kBadCrc: return "bad-crc";
    case WireError::kOversized: return "oversized";
    case WireError::kMalformed: return "malformed";
    case WireError::kUnknownType: return "unknown-type";
    case WireError::kShuttingDown: return "shutting-down";
    case WireError::kOverloaded: return "overloaded";
    case WireError::kBadJob: return "bad-job";
    case WireError::kUnknownJob: return "unknown-job";
    case WireError::kTransport: return "transport";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(
    MsgType type, const std::vector<std::uint8_t>& payload) {
  pbp::ByteWriter w;
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(0);  // reserved
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(pbp::crc32(payload));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

FrameCheck parse_header(const std::uint8_t header[kHeaderBytes],
                        std::size_t max_frame, FrameHeader* out) {
  pbp::ByteReader r(header, kHeaderBytes);
  if (r.u32() != kWireMagic) return FrameCheck::kBadMagic;
  if (r.u16() != kWireVersion) return FrameCheck::kBadVersion;
  out->type = r.u8();
  r.u8();  // reserved
  out->length = r.u32();
  out->crc = r.u32();
  if (out->length > max_frame) return FrameCheck::kOversized;
  return FrameCheck::kOk;
}

FrameCheck verify_payload(const FrameHeader& header,
                          const std::vector<std::uint8_t>& payload) {
  if (payload.size() != header.length || pbp::crc32(payload) != header.crc) {
    return FrameCheck::kBadCrc;
  }
  return FrameCheck::kOk;
}

// ---------------------------------------------------------------------------
// SubmitRequest.

void SubmitRequest::encode(pbp::ByteWriter& w) const {
  put_string(w, name);
  put_string(w, source);
  w.u8(static_cast<std::uint8_t>(sim));
  w.u8(static_cast<std::uint8_t>(backend));
  w.u32(ways);
  w.u64(max_instructions);
  w.u64(max_cycles);
  w.u64(checkpoint_every);
  w.u8(static_cast<std::uint8_t>(ecc));
  w.u64(ecc_epoch);
  w.u64(scrub_every);
  w.u32(qat_threads);
  w.u32(deadline_ms);
  w.u32(static_cast<std::uint32_t>(retry_max));
  put_string(w, fault_spec);
  w.u32(static_cast<std::uint32_t>(expect.size()));
  for (const auto& [reg, value] : expect) {
    w.u16(reg);
    w.u16(value);
  }
}

SubmitRequest SubmitRequest::decode(pbp::ByteReader& r) {
  SubmitRequest s;
  s.name = get_string(r, 4096);
  s.source = get_string(r);
  s.sim = checked_enum<SimKind>(
      r.u8(), static_cast<std::uint8_t>(SimKind::kRtl), "sim kind");
  s.backend = checked_enum<pbp::Backend>(
      r.u8(), static_cast<std::uint8_t>(pbp::Backend::kCompressed), "backend");
  s.ways = r.u32();
  s.max_instructions = r.u64();
  s.max_cycles = r.u64();
  s.checkpoint_every = r.u64();
  s.ecc = checked_enum<pbp::EccMode>(
      r.u8(), static_cast<std::uint8_t>(pbp::EccMode::kCorrect), "ecc mode");
  s.ecc_epoch = r.u64();
  s.scrub_every = r.u64();
  s.qat_threads = r.u32();
  s.deadline_ms = r.u32();
  s.retry_max = static_cast<std::int32_t>(r.u32());
  s.fault_spec = get_string(r, 4096);
  const std::uint32_t n = r.u32();
  if (n > kNumRegs) {
    throw std::runtime_error("wire: too many expect pairs");
  }
  s.expect.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint16_t reg = r.u16();
    const std::uint16_t value = r.u16();
    if (reg >= kNumRegs) {
      throw std::runtime_error("wire: expect register out of range");
    }
    s.expect.emplace_back(reg, value);
  }
  return s;
}

Job SubmitRequest::to_job() const {
  Job j;
  j.name = name;
  j.program = assemble(source);
  j.sim = sim;
  j.backend = backend;
  j.ways = ways;
  j.max_instructions = max_instructions;
  j.max_cycles = max_cycles;
  j.checkpoint_every = checkpoint_every;
  j.ecc = ecc;
  j.ecc_epoch = ecc_epoch;
  j.scrub_every = scrub_every;
  j.qat_threads = qat_threads;
  j.deadline = std::chrono::milliseconds(deadline_ms);
  j.retry_max = retry_max;
  if (!fault_spec.empty()) j.fault_plan = FaultPlan::parse(fault_spec, ways);
  if (!expect.empty()) {
    j.validate = [pairs = expect](const CpuState& cpu) {
      for (const auto& [reg, value] : pairs) {
        if (cpu.regs[reg] != value) return false;
      }
      return true;
    };
  }
  return j;
}

// ---------------------------------------------------------------------------
// Small messages.

void SubmitOk::encode(pbp::ByteWriter& w) const { w.u64(id); }
SubmitOk SubmitOk::decode(pbp::ByteReader& r) { return {r.u64()}; }

void RetryAfter::encode(pbp::ByteWriter& w) const {
  w.u32(delay_ms);
  w.u8(static_cast<std::uint8_t>(reason));
}
RetryAfter RetryAfter::decode(pbp::ByteReader& r) {
  RetryAfter m;
  m.delay_ms = r.u32();
  m.reason = checked_enum<Reason>(
      r.u8(), static_cast<std::uint8_t>(Reason::kConnInFlight), "shed reason");
  return m;
}

void CancelRequest::encode(pbp::ByteWriter& w) const { w.u64(id); }
CancelRequest CancelRequest::decode(pbp::ByteReader& r) { return {r.u64()}; }

void CancelOk::encode(pbp::ByteWriter& w) const { w.u8(cancelled ? 1 : 0); }
CancelOk CancelOk::decode(pbp::ByteReader& r) { return {r.u8() != 0}; }

void ProgressRequest::encode(pbp::ByteWriter& w) const { w.u64(id); }
ProgressRequest ProgressRequest::decode(pbp::ByteReader& r) {
  return {r.u64()};
}

void ProgressOk::encode(pbp::ByteWriter& w) const {
  w.u8(known ? 1 : 0);
  w.u8(phase);
  w.u32(attempts);
  w.u64(qat_ops);
  w.u64(ecc_corrected);
  w.u64(ecc_detected);
}
ProgressOk ProgressOk::decode(pbp::ByteReader& r) {
  ProgressOk m;
  m.known = r.u8() != 0;
  m.phase = r.u8();
  m.attempts = r.u32();
  m.qat_ops = r.u64();
  m.ecc_corrected = r.u64();
  m.ecc_detected = r.u64();
  return m;
}

void ErrorReply::encode(pbp::ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(code));
  put_string(w, message);
}
ErrorReply ErrorReply::decode(pbp::ByteReader& r) {
  ErrorReply m;
  m.code = checked_enum<WireError>(
      r.u8(), static_cast<std::uint8_t>(WireError::kTransport), "error code");
  m.message = get_string(r, 4096);
  return m;
}

void StatsOk::encode(pbp::ByteWriter& w) const {
  w.u16(snapshot_version);
  w.u64(jobs.submitted);
  w.u64(jobs.completed);
  w.u64(jobs.quarantined);
  w.u64(jobs.cancelled);
  w.u64(jobs.deadline_expired);
  w.u64(jobs.rejected_memory);
  w.u64(jobs.errors);
  w.u64(jobs.retries);
  w.u64(jobs.migrations_shed);
  w.u64(jobs.queue_full_rejections);
  w.u64(jobs.in_flight_bytes);
  w.u64(jobs.peak_in_flight_bytes);
  w.u64(jobs.queue_depth);
  w.u32(jobs.active_jobs);
  w.u64(ecc_corrected);
  w.u64(ecc_detected);
  w.u64(connections_accepted);
  w.u64(connections_active);
  w.u64(frames_rx);
  w.u64(frames_tx);
  w.u64(protocol_errors);
  w.u64(stall_closes);
  w.u64(retry_after_sent);
  w.u64(reports_streamed);
  w.u64(reports_orphaned);
  w.u8(draining ? 1 : 0);
}
StatsOk StatsOk::decode(pbp::ByteReader& r) {
  StatsOk m;
  m.snapshot_version = r.u16();
  m.jobs.submitted = r.u64();
  m.jobs.completed = r.u64();
  m.jobs.quarantined = r.u64();
  m.jobs.cancelled = r.u64();
  m.jobs.deadline_expired = r.u64();
  m.jobs.rejected_memory = r.u64();
  m.jobs.errors = r.u64();
  m.jobs.retries = r.u64();
  m.jobs.migrations_shed = r.u64();
  m.jobs.queue_full_rejections = r.u64();
  m.jobs.in_flight_bytes = static_cast<std::size_t>(r.u64());
  m.jobs.peak_in_flight_bytes = static_cast<std::size_t>(r.u64());
  m.jobs.queue_depth = static_cast<std::size_t>(r.u64());
  m.jobs.active_jobs = r.u32();
  m.ecc_corrected = r.u64();
  m.ecc_detected = r.u64();
  m.connections_accepted = r.u64();
  m.connections_active = r.u64();
  m.frames_rx = r.u64();
  m.frames_tx = r.u64();
  m.protocol_errors = r.u64();
  m.stall_closes = r.u64();
  m.retry_after_sent = r.u64();
  m.reports_streamed = r.u64();
  m.reports_orphaned = r.u64();
  m.draining = r.u8() != 0;
  return m;
}

// ---------------------------------------------------------------------------
// JobReport.

void encode_report(const JobReport& rep, pbp::ByteWriter& w) {
  w.u64(rep.id);
  put_string(w, rep.name);
  w.u8(static_cast<std::uint8_t>(rep.outcome));
  w.u8(static_cast<std::uint8_t>(rep.trap.kind));
  w.u16(rep.trap.pc);
  put_string(w, rep.error);
  w.u32(rep.attempts);
  w.u64(rep.retries);
  w.u8(rep.recovered ? 1 : 0);
  w.u64(rep.instructions);
  w.u64(rep.cycles);
  w.u64(rep.qat_ops);
  w.u64(rep.backend_migrations);
  w.u64(rep.ecc_corrected);
  w.u64(rep.ecc_detected);
  w.u64(rep.reserved_bytes);
  put_double(w, rep.queue_ms);
  put_double(w, rep.exec_ms);
  put_double(w, rep.backoff_ms);
}

JobReport decode_report(pbp::ByteReader& r) {
  JobReport rep;
  rep.id = r.u64();
  rep.name = get_string(r, 4096);
  rep.outcome = checked_enum<JobOutcome>(
      r.u8(), static_cast<std::uint8_t>(JobOutcome::kError), "outcome");
  rep.trap.kind = checked_enum<TrapKind>(
      r.u8(), static_cast<std::uint8_t>(TrapKind::kDataCorruption),
      "trap kind");
  rep.trap.pc = r.u16();
  rep.error = get_string(r, 4096);
  rep.attempts = r.u32();
  rep.retries = r.u64();
  rep.recovered = r.u8() != 0;
  rep.instructions = r.u64();
  rep.cycles = r.u64();
  rep.qat_ops = r.u64();
  rep.backend_migrations = r.u64();
  rep.ecc_corrected = r.u64();
  rep.ecc_detected = r.u64();
  rep.reserved_bytes = static_cast<std::size_t>(r.u64());
  rep.queue_ms = get_double(r);
  rep.exec_ms = get_double(r);
  rep.backoff_ms = get_double(r);
  return rep;
}

}  // namespace tangled::serve::net
