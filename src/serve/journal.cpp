#include "serve/journal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "arch/checkpoint.hpp"
#include "pbp/serialize.hpp"

namespace tangled::serve {

namespace {

constexpr std::uint32_t kJournalMagic = 0x4A474E54u;  // "TNGJ" little-endian
constexpr std::uint16_t kJournalVersion = 1;
// u32 magic + u16 version + u8 type + u8 reserved + u32 length + u32 crc.
constexpr std::size_t kRecordHeaderBytes = 16;

constexpr std::uint8_t kAdmit = 1;
constexpr std::uint8_t kCheckpoint = 2;
constexpr std::uint8_t kReport = 3;

void put_string(pbp::ByteWriter& w, const std::string& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  for (const char c : s) w.u8(static_cast<std::uint8_t>(c));
}

std::string get_string(pbp::ByteReader& r, std::size_t max_len = 4096) {
  const std::uint32_t n = r.u32();
  if (n > max_len || n > r.remaining()) {
    throw std::runtime_error("journal: string length out of range");
  }
  std::string s;
  s.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(r.u8()));
  }
  return s;
}

std::string segment_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "journal-%06llu.tgj",
                static_cast<unsigned long long>(index));
  return buf;
}

/// "journal-NNNNNN.tgj" → index; false for anything else.
bool parse_segment_name(const std::string& name, std::uint64_t* index) {
  if (name.size() < 13 || name.rfind("journal-", 0) != 0 ||
      name.substr(name.size() - 4) != ".tgj") {
    return false;
  }
  const std::string digits = name.substr(8, name.size() - 12);
  if (digits.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *index = v;
  return true;
}

bool is_checkpoint_image_name(const std::string& name) {
  return name.rfind("ckpt-", 0) == 0 && name.size() > 10 &&
         name.substr(name.size() - 5) == ".tgnc";
}

bool mkdir_p(const std::string& dir) {
  std::string path;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') continue;
    path = dir.substr(0, i == dir.size() ? i : i + 1);
    if (path.empty() || path == "/") continue;
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  struct stat st{};
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::vector<std::string> list_dir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  return names;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

std::vector<std::uint8_t> make_frame(std::uint8_t type,
                                     const std::vector<std::uint8_t>& payload) {
  pbp::ByteWriter w;
  w.u32(kJournalMagic);
  w.u16(kJournalVersion);
  w.u8(type);
  w.u8(0);  // reserved
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(pbp::crc32(payload));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace

std::unique_ptr<Journal> Journal::open(const Config& config, Recovery* out,
                                       std::string* err) {
  *out = Recovery{};
  if (config.dir.empty()) {
    if (err != nullptr) *err = "journal: empty directory";
    return nullptr;
  }
  if (!mkdir_p(config.dir)) {
    if (err != nullptr) {
      *err = "journal: cannot create directory " + config.dir + ": " +
             std::strerror(errno);
    }
    return nullptr;
  }

  std::unique_ptr<Journal> j(new Journal);
  j->dir_ = config.dir;
  j->segment_bytes_ = std::max<std::size_t>(config.segment_bytes, 4096);

  // Collect existing segments, ascending by index.
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  std::uint64_t max_index = 0;
  for (const std::string& name : list_dir(config.dir)) {
    std::uint64_t index = 0;
    if (parse_segment_name(name, &index)) {
      segments.emplace_back(index, config.dir + "/" + name);
      max_index = std::max(max_index, index);
    }
  }
  std::sort(segments.begin(), segments.end());

  // Replay.  Per segment, stop at the first torn or corrupt record: an
  // append is one write + fsync, so only the final record of the final
  // pre-crash segment can legitimately be torn — everything before it was
  // made durable in order.
  std::unordered_map<std::string, JobSpec> specs;
  for (const auto& [index, path] : segments) {
    std::vector<std::uint8_t> bytes;
    if (!read_file(path, &bytes)) {
      if (err != nullptr) *err = "journal: cannot read " + path;
      return nullptr;
    }
    std::size_t off = 0;
    while (true) {
      if (bytes.size() - off < kRecordHeaderBytes) {
        if (bytes.size() - off > 0) ++out->torn_records;
        break;
      }
      pbp::ByteReader h(bytes.data() + off, kRecordHeaderBytes);
      const std::uint32_t magic = h.u32();
      const std::uint16_t version = h.u16();
      const std::uint8_t type = h.u8();
      h.u8();  // reserved
      const std::uint32_t length = h.u32();
      const std::uint32_t crc = h.u32();
      if (magic != kJournalMagic || version != kJournalVersion ||
          length > bytes.size() - off - kRecordHeaderBytes) {
        ++out->torn_records;
        break;
      }
      const std::uint8_t* payload = bytes.data() + off + kRecordHeaderBytes;
      if (pbp::crc32(payload, length) != crc) {
        ++out->torn_records;
        break;
      }
      bool ok = true;
      try {
        pbp::ByteReader r(payload, length);
        switch (type) {
          case kAdmit: {
            JobSpec spec = JobSpec::deserialize(r);
            const std::string& key = spec.idempotency_key;
            auto it = j->live_.find(key);
            if (it == j->live_.end()) {
              j->live_order_.push_back(key);
              it = j->live_.emplace(key, LiveJob{}).first;
            }
            // Keep any checkpoint ref already seen for the key: rotation can
            // legally duplicate an admit after its checkpoint records.
            it->second.admit_payload.assign(payload, payload + length);
            specs[key] = std::move(spec);
            break;
          }
          case kCheckpoint: {
            const std::string key = get_string(r);
            const std::uint64_t seq = r.u64();
            const std::string file = get_string(r);
            j->next_ckpt_seq_ = std::max(j->next_ckpt_seq_, seq + 1);
            const auto it = j->live_.find(key);
            if (it != j->live_.end() && seq >= it->second.ckpt_seq) {
              it->second.ckpt_file = file;
              it->second.ckpt_seq = seq;
            }
            break;
          }
          case kReport: {
            JobReport rep = JobReport::deserialize(r);
            const std::string key = rep.idem_key;
            j->reports_[key].assign(payload, payload + length);
            j->live_.erase(key);
            out->completed[key] = std::move(rep);
            break;
          }
          default:
            // Unknown record type from a newer writer: skip, don't reject.
            break;
        }
      } catch (const std::exception&) {
        // CRC-clean yet undecodable: treat as the torn tail.
        ok = false;
      }
      if (!ok) {
        ++out->torn_records;
        break;
      }
      off += kRecordHeaderBytes + length;
    }
    ++out->segments_replayed;
    out->bytes_replayed += off;
    j->bytes_ += off;
  }

  for (const std::string& key : j->live_order_) {
    const auto it = j->live_.find(key);
    if (it == j->live_.end()) continue;
    RecoveredJob rj;
    rj.spec = specs[key];
    if (!it->second.ckpt_file.empty()) {
      rj.checkpoint_file = config.dir + "/" + it->second.ckpt_file;
      rj.checkpoint_seq = it->second.ckpt_seq;
    }
    out->incomplete.push_back(std::move(rj));
  }

  // Fold everything live into one fresh segment, then drop the old ones.
  std::vector<std::string> old_segments;
  old_segments.reserve(segments.size());
  for (const auto& [index, path] : segments) old_segments.push_back(path);
  j->seg_index_ = max_index + 1;
  {
    std::lock_guard<std::mutex> lock(j->mu_);
    if (!j->compact_locked(old_segments)) {
      if (err != nullptr) {
        *err = "journal: cannot write segment " +
               (config.dir + "/" + segment_name(j->seg_index_)) + ": " +
               std::strerror(errno);
      }
      return nullptr;
    }
  }

  // The env failpoint arms only after a successful open: it models the disk
  // filling up / erroring at runtime, not an unusable journal at startup.
  if (const char* env = std::getenv("TANGLED_JOURNAL_FAILPOINT")) {
    const std::string spec(env);
    const auto at = spec.find('@');
    if (at != std::string::npos) {
      const std::string kind = spec.substr(0, at);
      const int fail_errno =
          kind == "enospc" ? ENOSPC : (kind == "eio" ? EIO : 0);
      const std::uint64_t threshold =
          std::strtoull(spec.c_str() + at + 1, nullptr, 10);
      if (fail_errno != 0) {
        auto count = std::make_shared<std::uint64_t>(0);
        j->failpoint_ = [count, fail_errno, threshold](const char*) -> int {
          return (*count)++ >= threshold ? fail_errno : 0;
        };
      }
    }
  }
  return j;
}

Journal::~Journal() {
  if (seg_fd_ >= 0) ::close(seg_fd_);
}

int Journal::failpoint_locked(const char* op) {
  return failpoint_ ? failpoint_(op) : 0;
}

bool Journal::append_record_locked(std::uint8_t type,
                                   const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = make_frame(type, payload);
  if (seg_size_ + frame.size() > segment_bytes_) {
    // Rotation: fold live state into a fresh segment first.  The caller
    // updated the in-memory mirrors before appending, so the compacted
    // segment may already carry this record; replay is idempotent either
    // way.
    if (!compact_locked({seg_path_})) {
      healthy_ = false;
      return false;
    }
  }
  int err = failpoint_locked("append");
  if (err == 0 && !write_all(seg_fd_, frame.data(), frame.size())) {
    err = errno;
  }
  if (err == 0) err = failpoint_locked("fsync");
  if (err == 0 && ::fsync(seg_fd_) != 0) err = errno;
  if (err != 0) {
    // Degrade, never truncate: whatever reached the disk stays; replay
    // tolerates a torn final record.
    healthy_ = false;
    return false;
  }
  seg_size_ += frame.size();
  bytes_ += frame.size();
  return true;
}

bool Journal::compact_locked(const std::vector<std::string>& old_segments) {
  const std::uint64_t new_index = seg_fd_ >= 0 ? seg_index_ + 1 : seg_index_;
  const std::string new_path = dir_ + "/" + segment_name(new_index);

  std::vector<std::uint8_t> image;
  for (const std::string& key : live_order_) {
    const auto it = live_.find(key);
    if (it == live_.end()) continue;
    const auto admit = make_frame(kAdmit, it->second.admit_payload);
    image.insert(image.end(), admit.begin(), admit.end());
    if (!it->second.ckpt_file.empty()) {
      pbp::ByteWriter w;
      put_string(w, key);
      w.u64(it->second.ckpt_seq);
      put_string(w, it->second.ckpt_file);
      const auto ref = make_frame(kCheckpoint, w.take());
      image.insert(image.end(), ref.begin(), ref.end());
    }
  }
  for (const auto& [key, payload] : reports_) {
    const auto rep = make_frame(kReport, payload);
    image.insert(image.end(), rep.begin(), rep.end());
  }

  int err = failpoint_locked("append");
  const int fd = err != 0
                     ? -1
                     : ::open(new_path.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (err != 0) errno = err;
    return false;
  }
  bool ok = write_all(fd, image.data(), image.size());
  if (ok) {
    err = failpoint_locked("fsync");
    if (err != 0) {
      errno = err;
      ok = false;
    }
  }
  ok = ok && ::fsync(fd) == 0 && ::close(fd) == 0 && fsync_dir(dir_);
  if (!ok) {
    const int saved = errno;
    ::unlink(new_path.c_str());
    errno = saved;
    return false;
  }

  // The fresh segment is durable; only now retire the old generation.
  if (seg_fd_ >= 0) ::close(seg_fd_);
  for (const std::string& path : old_segments) {
    if (path != new_path) ::unlink(path.c_str());
  }
  seg_fd_ = ::open(new_path.c_str(), O_WRONLY | O_APPEND);
  if (seg_fd_ < 0) return false;
  seg_index_ = new_index;
  seg_path_ = new_path;
  seg_size_ = image.size();
  bytes_ += image.size();

  // live_order_ accumulates completed keys between compactions; rebuild.
  std::vector<std::string> order;
  order.reserve(live_.size());
  for (const std::string& key : live_order_) {
    if (live_.count(key) != 0) order.push_back(key);
  }
  live_order_ = std::move(order);

  remove_unreferenced_images_locked();
  return true;
}

void Journal::remove_unreferenced_images_locked() {
  for (const std::string& name : list_dir(dir_)) {
    if (!is_checkpoint_image_name(name)) continue;
    bool referenced = false;
    for (const auto& [key, lj] : live_) {
      if (lj.ckpt_file == name) {
        referenced = true;
        break;
      }
    }
    if (!referenced) ::unlink((dir_ + "/" + name).c_str());
  }
}

bool Journal::append_admit(const JobSpec& spec) {
  pbp::ByteWriter w;
  spec.serialize(w);
  const std::vector<std::uint8_t> payload = w.take();
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& key = spec.idempotency_key;
  auto it = live_.find(key);
  if (it == live_.end()) {
    live_order_.push_back(key);
    it = live_.emplace(key, LiveJob{}).first;
  }
  it->second.admit_payload = payload;
  if (!healthy_) return false;
  return append_record_locked(kAdmit, payload);
}

bool Journal::append_report(const JobReport& rep) {
  pbp::ByteWriter w;
  rep.serialize(w);
  const std::vector<std::uint8_t> payload = w.take();
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& key = rep.idem_key;
  std::string old_image;
  const auto it = live_.find(key);
  if (it != live_.end() && !it->second.ckpt_file.empty()) {
    old_image = it->second.ckpt_file;
  }
  // Mirrors first (same-process dedup must survive a degraded disk) ...
  reports_[key] = payload;
  live_.erase(key);
  // ... then durability.
  const bool ok = healthy_ && append_record_locked(kReport, payload);
  // The job is terminal in this process either way; its resume image is
  // garbage now.  If the report record did not become durable, replay will
  // fall back to a fresh re-run — correct, just slower.
  if (!old_image.empty()) ::unlink((dir_ + "/" + old_image).c_str());
  return ok;
}

bool Journal::append_checkpoint(const std::string& key,
                                const std::vector<std::uint8_t>& image) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!healthy_) return false;
  const int err = failpoint_locked("checkpoint");
  if (err != 0) {
    healthy_ = false;
    return false;
  }
  const std::uint64_t seq = next_ckpt_seq_++;
  const std::string file = "ckpt-" + std::to_string(seq) + ".tgnc";
  const std::string full = dir_ + "/" + file;
  try {
    write_file_durable(full, image.data(), image.size());
  } catch (const CheckpointError&) {
    healthy_ = false;
    ::unlink(full.c_str());
    return false;
  }
  pbp::ByteWriter w;
  put_string(w, key);
  w.u64(seq);
  put_string(w, file);
  if (!append_record_locked(kCheckpoint, w.take())) {
    ::unlink(full.c_str());
    return false;
  }
  const auto it = live_.find(key);
  if (it == live_.end()) {
    // The job went terminal while the image was being written; nothing
    // references it.
    ::unlink(full.c_str());
    return true;
  }
  if (!it->second.ckpt_file.empty() && it->second.ckpt_file != file) {
    // Old image retired only after the new reference is durable: a crash
    // in between leaves both, and recovery picks the newest seq.
    ::unlink((dir_ + "/" + it->second.ckpt_file).c_str());
  }
  it->second.ckpt_file = file;
  it->second.ckpt_seq = seq;
  return true;
}

bool Journal::healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return healthy_;
}

std::uint64_t Journal::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

void Journal::set_failpoint(std::function<int(const char* op)> fp) {
  std::lock_guard<std::mutex> lock(mu_);
  failpoint_ = std::move(fp);
}

}  // namespace tangled::serve
