// job.hpp — job descriptions and terminal reports for the concurrent
// Tangled/Qat job service (src/serve/job_server.hpp).
//
// A Job is everything needed to run one machine to completion: the
// assembled program, which of the five simulator models executes it, the
// Qat register-file backend and width, a fault-injection plan, and the
// per-job robustness knobs (instruction budget, cycle watchdog, checkpoint
// cadence, wall-clock deadline, retry budget).  A JobReport is the single
// terminal record the server publishes for every admitted job — exactly
// once, whatever happened: clean completion, recovery, quarantine after the
// retry budget, deadline expiry, cancellation, or memory-admission
// rejection.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "arch/cpu.hpp"
#include "arch/fault.hpp"
#include "arch/trap.hpp"
#include "asm/assembler.hpp"
#include "pbp/ecc.hpp"
#include "pbp/serialize.hpp"

namespace tangled::serve {

/// Which of the five implementation models executes the job.
enum class SimKind : std::uint8_t {
  kFunc,        // single-cycle (Figure 6)
  kMulti,       // multi-cycle, accounting form
  kMultiFsm,    // multi-cycle, explicit state machine
  kPipe4,       // 4-stage pipeline
  kPipe5,       // 5-stage pipeline
  kPipe5NoFwd,  // 5-stage, forwarding disabled
  kRtl,         // latch-level 5-stage pipeline (restart-only recovery)
};

const char* sim_kind_name(SimKind k);
/// Parse "func" / "multi" / "multi-fsm" / "pipe4" / "pipe5" /
/// "pipe5-nofwd" / "rtl"; throws std::invalid_argument otherwise.
SimKind parse_sim_kind(const std::string& name);

struct Job {
  std::string name;  // free-form tag echoed into the report
  Program program;
  SimKind sim = SimKind::kFunc;
  pbp::Backend backend = pbp::Backend::kDense;
  unsigned ways = 8;

  std::uint64_t max_instructions = 10'000'000;
  std::uint64_t max_cycles = 0;        // cycle watchdog, 0 = off
  /// Checkpoint cadence for rollback recovery (arch/recovery.hpp); 0 =
  /// restart-only.  Forced to 0 on the RTL model, where mid-run slicing is
  /// not architecturally sound.
  std::uint64_t checkpoint_every = 0;
  FaultPlan fault_plan;

  /// Data-integrity policy for the job's machine: ECC over the Qat register
  /// file and Tangled data memory (pbp/ecc.hpp).
  pbp::EccMode ecc = pbp::EccMode::kOff;
  /// Verification epoch in retired instructions (clamped to ≥1; 1 =
  /// verify every access; only meaningful with ecc != kOff).
  std::uint64_t ecc_epoch = 1;
  /// Background scrub cadence in retired instructions (0 = off; only
  /// meaningful with ecc != kOff).
  std::uint64_t scrub_every = 0;
  /// Intra-register worker threads for wide dense Qat registers (ways >=
  /// 20); 0 is clamped to 1.  Never changes architectural results.
  unsigned qat_threads = 1;

  /// Wall-clock deadline measured from submission (queue wait included);
  /// zero means "use the server default" (which may itself be none).
  std::chrono::milliseconds deadline{0};
  /// Serve-level retries (full re-runs with exponential backoff) after the
  /// checkpointing runner gives up; -1 means "use the server default".
  int retry_max = -1;

  /// Called on a clean halt; returning false marks the run as silently
  /// corrupted and triggers recovery exactly like a trap.  Null accepts any
  /// clean halt.
  std::function<bool(const CpuState&)> validate;

  /// Client-chosen exactly-once key.  Empty = none (the journal assigns a
  /// per-process surrogate).  A resubmission bearing the key of a live job
  /// returns that job's id; bearing the key of a finished job, its stored
  /// report is re-delivered (deduped) instead of running again.
  std::string idempotency_key;
  /// Path of a durable mid-run checkpoint image to resume attempt 1 from
  /// (set by journal recovery; empty = fresh start).  An unreadable or
  /// corrupt image silently falls back to a fresh start — resumption is an
  /// optimization, correctness comes from re-execution.
  std::string resume_checkpoint;
  /// In-memory resume image (set by the supervisor when it preempts and
  /// requeues a stalled job; takes precedence over resume_checkpoint).  A
  /// corrupt image falls back to a fresh start, like resume_checkpoint.
  std::vector<std::uint8_t> resume_image;

  /// Tenant (accounting principal) the job is admitted under.  Empty maps
  /// to the shared "default" tenant.  Tenants get weighted-fair dequeue and
  /// per-tenant in-flight / queue / memory quotas (job_server.hpp).
  std::string tenant;
  /// Test seam: "at=N,ms=M" makes the job's slice observer sleep M ms once
  /// the job has retired >= N instructions — a cooperative, interruptible
  /// stall for exercising the supervisor.  Empty = off.  Parse errors are
  /// a submit-time configuration error.
  std::string stall_spec;
};

/// The serializable description of a job — everything a Job carries except
/// the in-process artifacts (assembled program, validate closure), which
/// to_job() rebuilds deterministically from `source` / `expect` /
/// `fault_spec`.  This is the payload of both the wire SubmitRequest and
/// the journal's admit record: one codec, one durability format.
struct JobSpec {
  std::string name;
  /// Assembly source text, assembled server-side (a program is its source;
  /// shipping text keeps the format independent of the encoder).
  std::string source;
  SimKind sim = SimKind::kFunc;
  pbp::Backend backend = pbp::Backend::kDense;
  std::uint32_t ways = 8;
  std::uint64_t max_instructions = 10'000'000;
  std::uint64_t max_cycles = 0;
  std::uint64_t checkpoint_every = 0;
  pbp::EccMode ecc = pbp::EccMode::kOff;
  std::uint64_t ecc_epoch = 1;
  std::uint64_t scrub_every = 0;
  std::uint32_t qat_threads = 1;
  std::uint32_t deadline_ms = 0;  // 0 = server default
  std::int32_t retry_max = -1;    // -1 = server default
  /// FaultPlan::parse spec ("seed=41,events=6,..."); empty = no plan.
  std::string fault_spec;
  /// Clean-halt validation: every (reg, value) pair must match the final
  /// host register file, else the run counts as silently corrupted and
  /// recovers/quarantines exactly like a trap.  Empty accepts any halt.
  std::vector<std::pair<std::uint16_t, std::uint16_t>> expect;
  /// Exactly-once key (see Job::idempotency_key).
  std::string idempotency_key;
  /// Tenant the job is admitted under (see Job::tenant).  Empty = default.
  std::string tenant;
  /// Injected-stall test seam (see Job::stall_spec).
  std::string stall_spec;

  void serialize(pbp::ByteWriter& w) const;
  /// Throws std::runtime_error on truncated or out-of-range fields.
  static JobSpec deserialize(pbp::ByteReader& r);
  /// Materialize the serve-layer Job (assembles `source`, parses
  /// `fault_spec`, builds the expect-validator).  Throws AsmError /
  /// std::invalid_argument on bad input.
  Job to_job() const;
};

/// Parsed Job::stall_spec: once the job has retired `at` instructions, its
/// slice observer sleeps `ms` milliseconds (interruptibly — cancellation and
/// supervisor preemption both cut it short), on the first `times` runs of
/// the job (preemption-requeues included).
struct StallSpec {
  std::uint64_t at = 0;
  std::uint32_t ms = 0;
  std::uint32_t times = 1;
};

/// Parse "at=N,ms=M[,times=K]"; throws std::invalid_argument otherwise.
StallSpec parse_stall_spec(const std::string& spec);

enum class JobOutcome : std::uint8_t {
  kCompleted,       // clean halt (validate passed); may have recovered
  kQuarantined,     // retry budget exhausted; trap records the last cause
  kDeadlineExpired, // wall-clock deadline hit (queued or running)
  kCancelled,       // cooperative cancellation honoured
  kRejectedMemory,  // admission control: register file exceeds the budget
  kError,           // configuration error (bad ways/backend combination)
};

const char* job_outcome_name(JobOutcome o);

/// The single terminal record for an admitted job.
struct JobReport {
  std::uint64_t id = 0;
  std::string name;
  JobOutcome outcome = JobOutcome::kError;
  Trap trap{};               // terminal trap when quarantined (may be kNone
                             // for a wrong-answer or livelock quarantine)
  std::string error;         // kError detail

  unsigned attempts = 0;         // checkpointing-runner invocations
  std::uint64_t retries = 0;     // rollbacks + restarts + re-run attempts
  bool recovered = false;        // at least one retry happened
  std::uint64_t instructions = 0;  // retired, re-execution included
  std::uint64_t cycles = 0;        // simulated cycles, re-execution included
  std::uint64_t qat_ops = 0;
  std::uint64_t backend_migrations = 0;  // RE→dense degradations
  std::uint64_t ecc_corrected = 0;  // single-bit upsets repaired (Qat + mem)
  std::uint64_t ecc_detected = 0;   // uncorrectable upsets trapped

  std::size_t reserved_bytes = 0;  // memory-budget reservation held
  double queue_ms = 0.0;    // submission → execution start
  double exec_ms = 0.0;     // execution start → terminal
  double backoff_ms = 0.0;  // of exec_ms, spent sleeping between retries

  std::string idem_key;  // exactly-once key the job was admitted under
  bool deduped = false;  // re-delivery of a stored report, not a fresh run
  bool resumed = false;  // attempt 1 restored a journaled mid-run checkpoint

  std::string tenant;            // tenant the job was admitted under
  std::uint32_t preemptions = 0; // supervisor stall-preemptions survived

  /// Journal/wire codec (the report is both the kReport payload and the
  /// journal's terminal record).
  void serialize(pbp::ByteWriter& w) const;
  static JobReport deserialize(pbp::ByteReader& r);

  std::string to_string() const;
};

}  // namespace tangled::serve
