#include "serve/job.hpp"

#include <stdexcept>

namespace tangled::serve {

const char* sim_kind_name(SimKind k) {
  switch (k) {
    case SimKind::kFunc:
      return "func";
    case SimKind::kMulti:
      return "multi";
    case SimKind::kMultiFsm:
      return "multi-fsm";
    case SimKind::kPipe4:
      return "pipe4";
    case SimKind::kPipe5:
      return "pipe5";
    case SimKind::kPipe5NoFwd:
      return "pipe5-nofwd";
    case SimKind::kRtl:
      return "rtl";
  }
  return "unknown";
}

SimKind parse_sim_kind(const std::string& name) {
  if (name == "func") return SimKind::kFunc;
  if (name == "multi") return SimKind::kMulti;
  if (name == "multi-fsm") return SimKind::kMultiFsm;
  if (name == "pipe4") return SimKind::kPipe4;
  if (name == "pipe5") return SimKind::kPipe5;
  if (name == "pipe5-nofwd") return SimKind::kPipe5NoFwd;
  if (name == "rtl") return SimKind::kRtl;
  throw std::invalid_argument("unknown simulator kind '" + name + "'");
}

const char* job_outcome_name(JobOutcome o) {
  switch (o) {
    case JobOutcome::kCompleted:
      return "completed";
    case JobOutcome::kQuarantined:
      return "quarantined";
    case JobOutcome::kDeadlineExpired:
      return "deadline-expired";
    case JobOutcome::kCancelled:
      return "cancelled";
    case JobOutcome::kRejectedMemory:
      return "rejected-memory";
    case JobOutcome::kError:
      return "error";
  }
  return "unknown";
}

std::string JobReport::to_string() const {
  std::string s = "job " + std::to_string(id);
  if (!name.empty()) s += " (" + name + ")";
  s += ": ";
  s += job_outcome_name(outcome);
  if (outcome == JobOutcome::kQuarantined) {
    s += " [trap: ";
    s += trap_kind_name(trap.kind);
    s += "]";
  }
  if (outcome == JobOutcome::kError) s += " [" + error + "]";
  s += ", attempts " + std::to_string(attempts);
  s += ", retries " + std::to_string(retries);
  if (recovered) s += " (recovered)";
  s += ", " + std::to_string(instructions) + " instr";
  s += ", " + std::to_string(qat_ops) + " qat ops";
  if (backend_migrations != 0) {
    s += ", " + std::to_string(backend_migrations) + " migration(s)";
  }
  if (ecc_corrected != 0) {
    s += ", " + std::to_string(ecc_corrected) + " upset(s) corrected";
  }
  if (ecc_detected != 0) {
    s += ", " + std::to_string(ecc_detected) + " upset(s) detected";
  }
  return s;
}

}  // namespace tangled::serve
