#include "serve/job.hpp"

#include <bit>
#include <stdexcept>

namespace tangled::serve {

namespace {

void put_string(pbp::ByteWriter& w, const std::string& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  for (const char c : s) w.u8(static_cast<std::uint8_t>(c));
}

std::string get_string(pbp::ByteReader& r, std::size_t max_len = 1 << 20) {
  const std::uint32_t n = r.u32();
  if (n > max_len || n > r.remaining()) {
    throw std::runtime_error("job codec: string length out of range");
  }
  std::string s;
  s.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(r.u8()));
  }
  return s;
}

void put_double(pbp::ByteWriter& w, double v) {
  w.u64(std::bit_cast<std::uint64_t>(v));
}

double get_double(pbp::ByteReader& r) {
  return std::bit_cast<double>(r.u64());
}

/// Range-checked enum decode: a CRC-clean record can still carry a value
/// the enum does not define (a hostile peer, a newer writer) — that is a
/// decode error, not undefined behaviour.
template <typename E>
E checked_enum(std::uint8_t raw, std::uint8_t max, const char* what) {
  if (raw > max) {
    throw std::runtime_error(std::string("job codec: out-of-range ") + what);
  }
  return static_cast<E>(raw);
}

}  // namespace

const char* sim_kind_name(SimKind k) {
  switch (k) {
    case SimKind::kFunc:
      return "func";
    case SimKind::kMulti:
      return "multi";
    case SimKind::kMultiFsm:
      return "multi-fsm";
    case SimKind::kPipe4:
      return "pipe4";
    case SimKind::kPipe5:
      return "pipe5";
    case SimKind::kPipe5NoFwd:
      return "pipe5-nofwd";
    case SimKind::kRtl:
      return "rtl";
  }
  return "unknown";
}

SimKind parse_sim_kind(const std::string& name) {
  if (name == "func") return SimKind::kFunc;
  if (name == "multi") return SimKind::kMulti;
  if (name == "multi-fsm") return SimKind::kMultiFsm;
  if (name == "pipe4") return SimKind::kPipe4;
  if (name == "pipe5") return SimKind::kPipe5;
  if (name == "pipe5-nofwd") return SimKind::kPipe5NoFwd;
  if (name == "rtl") return SimKind::kRtl;
  throw std::invalid_argument("unknown simulator kind '" + name + "'");
}

StallSpec parse_stall_spec(const std::string& spec) {
  StallSpec out;
  bool have_at = false;
  bool have_ms = false;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string field = spec.substr(pos, comma - pos);
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("stall spec: expected key=value, got '" +
                                  field + "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    std::uint64_t n = 0;
    try {
      std::size_t used = 0;
      n = std::stoull(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
    } catch (const std::exception&) {
      throw std::invalid_argument("stall spec: bad value for '" + key + "'");
    }
    if (key == "at") {
      out.at = n;
      have_at = true;
    } else if (key == "ms") {
      out.ms = static_cast<std::uint32_t>(n);
      have_ms = true;
    } else if (key == "times") {
      out.times = static_cast<std::uint32_t>(n);
    } else {
      throw std::invalid_argument("stall spec: unknown key '" + key + "'");
    }
    pos = comma + 1;
  }
  if (!have_at || !have_ms) {
    throw std::invalid_argument("stall spec: need at=N,ms=M");
  }
  return out;
}

const char* job_outcome_name(JobOutcome o) {
  switch (o) {
    case JobOutcome::kCompleted:
      return "completed";
    case JobOutcome::kQuarantined:
      return "quarantined";
    case JobOutcome::kDeadlineExpired:
      return "deadline-expired";
    case JobOutcome::kCancelled:
      return "cancelled";
    case JobOutcome::kRejectedMemory:
      return "rejected-memory";
    case JobOutcome::kError:
      return "error";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// JobSpec codec — the one durability format shared by the wire SubmitRequest
// and the journal admit record.

void JobSpec::serialize(pbp::ByteWriter& w) const {
  put_string(w, name);
  put_string(w, source);
  w.u8(static_cast<std::uint8_t>(sim));
  w.u8(static_cast<std::uint8_t>(backend));
  w.u32(ways);
  w.u64(max_instructions);
  w.u64(max_cycles);
  w.u64(checkpoint_every);
  w.u8(static_cast<std::uint8_t>(ecc));
  w.u64(ecc_epoch);
  w.u64(scrub_every);
  w.u32(qat_threads);
  w.u32(deadline_ms);
  w.u32(static_cast<std::uint32_t>(retry_max));
  put_string(w, fault_spec);
  w.u32(static_cast<std::uint32_t>(expect.size()));
  for (const auto& [reg, value] : expect) {
    w.u16(reg);
    w.u16(value);
  }
  put_string(w, idempotency_key);
  put_string(w, tenant);
  put_string(w, stall_spec);
}

JobSpec JobSpec::deserialize(pbp::ByteReader& r) {
  JobSpec s;
  s.name = get_string(r, 4096);
  s.source = get_string(r);
  s.sim = checked_enum<SimKind>(
      r.u8(), static_cast<std::uint8_t>(SimKind::kRtl), "sim kind");
  s.backend = checked_enum<pbp::Backend>(
      r.u8(), static_cast<std::uint8_t>(pbp::Backend::kCompressed), "backend");
  s.ways = r.u32();
  s.max_instructions = r.u64();
  s.max_cycles = r.u64();
  s.checkpoint_every = r.u64();
  s.ecc = checked_enum<pbp::EccMode>(
      r.u8(), static_cast<std::uint8_t>(pbp::EccMode::kCorrect), "ecc mode");
  s.ecc_epoch = r.u64();
  s.scrub_every = r.u64();
  s.qat_threads = r.u32();
  s.deadline_ms = r.u32();
  s.retry_max = static_cast<std::int32_t>(r.u32());
  s.fault_spec = get_string(r, 4096);
  const std::uint32_t n = r.u32();
  if (n > kNumRegs) {
    throw std::runtime_error("job codec: too many expect pairs");
  }
  s.expect.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint16_t reg = r.u16();
    const std::uint16_t value = r.u16();
    if (reg >= kNumRegs) {
      throw std::runtime_error("job codec: expect register out of range");
    }
    s.expect.emplace_back(reg, value);
  }
  s.idempotency_key = get_string(r, 4096);
  // Governance fields (wire v3).  Absent on v2-era journal admit records,
  // whose payload ends exactly at the key — default them rather than reject
  // an old journal.  A hostile mid-string truncation still throws above.
  if (r.remaining() > 0) {
    s.tenant = get_string(r, 256);
    s.stall_spec = get_string(r, 256);
  }
  return s;
}

Job JobSpec::to_job() const {
  Job j;
  j.name = name;
  j.program = assemble(source);
  j.sim = sim;
  j.backend = backend;
  j.ways = ways;
  j.max_instructions = max_instructions;
  j.max_cycles = max_cycles;
  j.checkpoint_every = checkpoint_every;
  j.ecc = ecc;
  j.ecc_epoch = ecc_epoch;
  j.scrub_every = scrub_every;
  j.qat_threads = qat_threads;
  j.deadline = std::chrono::milliseconds(deadline_ms);
  j.retry_max = retry_max;
  if (!fault_spec.empty()) j.fault_plan = FaultPlan::parse(fault_spec, ways);
  if (!expect.empty()) {
    j.validate = [pairs = expect](const CpuState& cpu) {
      for (const auto& [reg, value] : pairs) {
        if (cpu.regs[reg] != value) return false;
      }
      return true;
    };
  }
  j.idempotency_key = idempotency_key;
  j.tenant = tenant;
  if (!stall_spec.empty()) parse_stall_spec(stall_spec);  // reject bad specs
  j.stall_spec = stall_spec;
  return j;
}

// ---------------------------------------------------------------------------
// JobReport codec — shared by the wire kReport payload and the journal's
// terminal record.  New fields append at the END so older readers that stop
// early still parse the prefix.

void JobReport::serialize(pbp::ByteWriter& w) const {
  w.u64(id);
  put_string(w, name);
  w.u8(static_cast<std::uint8_t>(outcome));
  w.u8(static_cast<std::uint8_t>(trap.kind));
  w.u16(trap.pc);
  put_string(w, error);
  w.u32(attempts);
  w.u64(retries);
  w.u8(recovered ? 1 : 0);
  w.u64(instructions);
  w.u64(cycles);
  w.u64(qat_ops);
  w.u64(backend_migrations);
  w.u64(ecc_corrected);
  w.u64(ecc_detected);
  w.u64(reserved_bytes);
  put_double(w, queue_ms);
  put_double(w, exec_ms);
  put_double(w, backoff_ms);
  put_string(w, idem_key);
  w.u8(deduped ? 1 : 0);
  w.u8(resumed ? 1 : 0);
  put_string(w, tenant);
  w.u32(preemptions);
}

JobReport JobReport::deserialize(pbp::ByteReader& r) {
  JobReport rep;
  rep.id = r.u64();
  rep.name = get_string(r, 4096);
  rep.outcome = checked_enum<JobOutcome>(
      r.u8(), static_cast<std::uint8_t>(JobOutcome::kError), "outcome");
  rep.trap.kind = checked_enum<TrapKind>(
      r.u8(), static_cast<std::uint8_t>(TrapKind::kDataCorruption),
      "trap kind");
  rep.trap.pc = r.u16();
  rep.error = get_string(r, 4096);
  rep.attempts = r.u32();
  rep.retries = r.u64();
  rep.recovered = r.u8() != 0;
  rep.instructions = r.u64();
  rep.cycles = r.u64();
  rep.qat_ops = r.u64();
  rep.backend_migrations = r.u64();
  rep.ecc_corrected = r.u64();
  rep.ecc_detected = r.u64();
  rep.reserved_bytes = static_cast<std::size_t>(r.u64());
  rep.queue_ms = get_double(r);
  rep.exec_ms = get_double(r);
  rep.backoff_ms = get_double(r);
  rep.idem_key = get_string(r, 4096);
  rep.deduped = r.u8() != 0;
  rep.resumed = r.u8() != 0;
  // Governance fields (wire v3); absent on v2-era journal report records.
  if (r.remaining() > 0) {
    rep.tenant = get_string(r, 256);
    rep.preemptions = r.u32();
  }
  return rep;
}

std::string JobReport::to_string() const {
  std::string s = "job " + std::to_string(id);
  if (!name.empty()) s += " (" + name + ")";
  s += ": ";
  s += job_outcome_name(outcome);
  if (outcome == JobOutcome::kQuarantined) {
    s += " [trap: ";
    s += trap_kind_name(trap.kind);
    s += "]";
  }
  if (outcome == JobOutcome::kError) s += " [" + error + "]";
  s += ", attempts " + std::to_string(attempts);
  s += ", retries " + std::to_string(retries);
  if (recovered) s += " (recovered)";
  if (resumed) s += " (resumed)";
  if (deduped) s += " (deduped)";
  if (!tenant.empty()) s += ", tenant " + tenant;
  if (preemptions != 0) {
    s += ", " + std::to_string(preemptions) + " preemption(s)";
  }
  s += ", " + std::to_string(instructions) + " instr";
  s += ", " + std::to_string(qat_ops) + " qat ops";
  if (backend_migrations != 0) {
    s += ", " + std::to_string(backend_migrations) + " migration(s)";
  }
  if (ecc_corrected != 0) {
    s += ", " + std::to_string(ecc_corrected) + " upset(s) corrected";
  }
  if (ecc_detected != 0) {
    s += ", " + std::to_string(ecc_detected) + " upset(s) detected";
  }
  return s;
}

}  // namespace tangled::serve
