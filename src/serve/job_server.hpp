// job_server.hpp — a thread-pooled, admission-controlled execution service
// for Tangled/Qat jobs (the ISSUE 3 tentpole).
//
// The server owns K worker threads and a bounded submission queue.  Every
// admitted job runs with per-job isolation (its own simulator, memory image
// and Qat register file — the machine models share no mutable state), under
// a wall-clock deadline and the existing cycle watchdog, with cooperative
// cancellation.  A trap, an injected fault, or a silently-wrong answer
// retries through arch/recovery.hpp's CheckpointingRunner; when the runner
// gives up, the serve layer re-runs the job up to retry_max times with
// capped exponential backoff + jitter before quarantining it.  Whatever
// happens, each admitted job produces exactly one terminal JobReport.
//
// Admission control:
//   * bounded queue — submit() blocks for space (backpressure); try_submit()
//     rejects immediately with "queue-full";
//   * memory budget — each job reserves its register-file footprint
//     (pbp::dense_backend_bytes for dense jobs) before running; jobs wider
//     than the whole budget are rejected with kRejectedMemory, and RE jobs
//     install a migration guard so that under pressure an RE→dense
//     degradation is shed (vetoed) rather than allowed to balloon memory —
//     the job then traps kResourceExhausted and retries or quarantines;
//   * graceful drain — shutdown(drain=true) stops admissions, runs the
//     queue dry and joins the workers; shutdown(drain=false) additionally
//     cancels queued and running jobs.  Either way no report is lost or
//     duplicated.
//
// Durability (ISSUE 8): with JobServerConfig::journal_dir set, admissions,
// periodic checkpoints, and terminal reports are write-ahead-logged
// (serve/journal.hpp).  The constructor replays the log: jobs admitted but
// never reported before a crash are re-run — resumed mid-flight from their
// newest durable checkpoint when one exists — and finished jobs' reports
// are retained so a resubmission bearing the same idempotency key is
// answered from the log (deduped) instead of executed twice.  Exactly-once
// now holds across process death, not just within one.
//
// Thread-safety of observation: progress() reads the running job's QatStats
// through the engine's relaxed-atomic counters (see arch/qat_engine.hpp),
// so a monitoring thread can poll a job mid-run without racing the engine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "arch/qat_engine.hpp"
#include "pbp/re.hpp"
#include "serve/job.hpp"

namespace tangled::serve {

class SimulatorPool;

struct JobServerConfig {
  unsigned threads = 4;
  std::size_t queue_capacity = 64;
  /// Write-ahead journal directory (serve/journal.hpp); empty = no
  /// durability (the pre-ISSUE-8 in-memory behaviour).  When set, the
  /// constructor replays the journal — re-running every admitted job that
  /// never reported, resuming from its newest durable checkpoint — and
  /// throws std::runtime_error if the directory is unusable.
  std::string journal_dir;
  std::size_t journal_segment_bytes = std::size_t{1} << 20;
  /// Checkpoint cadence applied to journaled jobs that don't set their own
  /// (Job::checkpoint_every == 0): how often a resumable image is eligible
  /// to be persisted.  0 = journaled jobs restart from scratch on crash.
  std::uint64_t checkpoint_every_default = 0;
  /// Global register-file memory budget shared by all in-flight jobs.
  std::size_t memory_budget_bytes = std::size_t{512} << 20;  // 512 MiB
  /// Serve-level re-runs after the checkpointing runner gives up.
  unsigned retry_max = 2;
  std::chrono::milliseconds backoff_base{2};
  std::chrono::milliseconds backoff_cap{250};
  /// Default wall-clock deadline for jobs that don't set one; zero = none.
  std::chrono::milliseconds default_deadline{0};
  /// Cancellation/deadline polling granularity: the checkpointing runner's
  /// slice cap on the instruction-atomic models (0 would disable polling).
  std::uint64_t slice_instructions = 4096;
  /// Base seed for backoff jitter (per-job: seed ^ job id).
  std::uint64_t seed = 0x5eed5eedULL;

  // --- Supervision (ISSUE 9). ---
  /// A running job that retires no instructions for this long is stalled:
  /// the supervisor preempts it (cooperative slice cancel), requeues it from
  /// its newest checkpoint, and quarantines it after max_preemptions.
  /// 0 = stall detection off.
  std::chrono::milliseconds stall_timeout{0};
  /// Stall-preemptions a job survives before it is quarantined as wedged
  /// (outcome kQuarantined, error "stalled...").  0 = quarantine on the
  /// first stall.
  unsigned max_preemptions = 3;
  /// Supervisor scan cadence; 0 = auto (stall_timeout/4, clamped to
  /// [5, 250] ms — 50 ms when stall detection is off, for health updates).
  std::chrono::milliseconds supervise_tick{0};

  // --- Per-tenant governance (ISSUE 9). ---
  /// Max queued jobs per tenant; over it, submissions shed with
  /// "tenant-over-quota".  0 = no per-tenant queue cap.
  std::size_t tenant_max_queued = 0;
  /// Max concurrently running jobs per tenant (weighted-fair dequeue skips
  /// tenants at their cap).  0 = no cap.
  unsigned tenant_max_inflight = 0;
  /// Per-tenant memory-budget slice (register-file reservations); a job
  /// whose footprint exceeds it is kRejectedMemory even if the global
  /// budget would fit it.  0 = tenants share only the global budget.
  std::size_t tenant_memory_budget_bytes = 0;
  /// Weighted-fair dequeue shares: (tenant, weight) pairs; unlisted tenants
  /// (including the default "" tenant) get weight 1.  A backlogged tenant
  /// with weight w is dequeued w times as often as a weight-1 one.
  std::vector<std::pair<std::string, unsigned>> tenant_weights;

  /// Health machine: the oldest queued job waiting this long marks the
  /// server browning-out (4x this long: degraded).  0 = queue delay never
  /// affects health.
  std::chrono::milliseconds brownout_queue_delay{500};

  // --- Hot-path pooling (ISSUE 10). ---
  /// Per-worker simulator cache: each worker keeps up to this many warm
  /// simulators, keyed by (SimKind, backend, ways), and hands jobs a
  /// reset() one instead of constructing from scratch (serve/sim_pool.hpp;
  /// reset is contractually bit-identical to fresh construction).
  /// 0 disables pooling — every job cold-constructs, the pre-pool
  /// behavior.
  std::size_t sim_pool = 8;
  /// Shared RE chunk-pool stripes: compressed jobs that carry no ECC and
  /// no fault plan are pinned (by job id) to one of this many concurrent
  /// hash-consing pools, so their chunk universes are built once and
  /// shared instead of re-interned per job — and concurrent RE jobs no
  /// longer serialize on a single pool.  0 = every compressed job builds
  /// a private pool (the pre-pool behavior).
  unsigned chunk_shards = 0;
};

/// Coarse service health, computed by the supervisor each tick and exported
/// through stats()/the v3 wire snapshot.  The net front door scales its
/// RETRY_AFTER hints by it (healthy 1x, browning-out 4x, degraded 16x).
enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kBrowningOut = 1,  // queue delay over threshold, or a stall in the last 1 s
  kDegraded = 2,     // journal unhealthy, or queue delay over 4x threshold
};

const char* health_state_name(HealthState h);

enum class JobPhase : std::uint8_t {
  kQueued,
  kWaitingMemory,
  kRunning,
  kBackoff,
  kDone,
};

/// Live, race-free view of one job (counters are relaxed-atomic snapshots).
struct JobProgress {
  JobPhase phase = JobPhase::kQueued;
  unsigned attempts = 0;
  QatStatsSnapshot qat;
};

/// Aggregate server counters (a snapshot; see stats()).
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t rejected_memory = 0;
  std::uint64_t errors = 0;
  std::uint64_t retries = 0;          // serve + runner retries, all jobs
  std::uint64_t migrations_shed = 0;  // RE→dense degradations vetoed
  std::uint64_t queue_full_rejections = 0;
  /// ECC upset totals aggregated over every terminal report (the health
  /// counters the net front door publishes in its stats snapshot).
  std::uint64_t ecc_corrected = 0;
  std::uint64_t ecc_detected = 0;
  std::size_t in_flight_bytes = 0;
  std::size_t peak_in_flight_bytes = 0;
  std::size_t queue_depth = 0;
  unsigned active_jobs = 0;
  // Durability counters (zero when no journal is configured).
  std::uint64_t jobs_recovered = 0;   // incomplete jobs re-run at startup
  std::uint64_t journal_replays = 0;  // segments replayed at startup
  std::uint64_t journal_bytes = 0;    // journal bytes replayed + appended
  std::uint64_t reports_deduped = 0;  // keyed resubmits answered from the log
  std::uint64_t journal_shed = 0;     // admissions shed: journal unhealthy
  // Governance counters (ISSUE 9; zero when supervision is off).
  std::uint64_t stalls_detected = 0;  // supervisor stall detections
  std::uint64_t preemptions = 0;      // stalled jobs preempted + requeued
  std::uint64_t stall_quarantines = 0;  // jobs wedged past max_preemptions
  std::uint64_t tenant_sheds = 0;     // submissions shed: tenant over quota
  std::uint8_t health = 0;            // HealthState
  // Hot-path pooling counters (ISSUE 10; zero when sim_pool is 0).
  std::uint64_t sim_pool_hits = 0;    // jobs served by a reset warm sim
  std::uint64_t sim_pool_misses = 0;  // jobs that cold-constructed
};

class Journal;

class JobServer {
 public:
  using JobId = std::uint64_t;

  explicit JobServer(JobServerConfig config = {});
  /// Drains gracefully (shutdown(true)) if the caller has not already.
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Blocking submission: waits for queue space (backpressure).  Returns
  /// nullopt only when the server is shutting down.
  std::optional<JobId> submit(Job job);
  /// Bounded-blocking submission: waits at most `max_wait` for queue space,
  /// then rejects with "queue-full" (or "shutting-down" if admissions
  /// stopped while waiting).  max_wait = 0 behaves like try_submit.
  std::optional<JobId> submit_for(Job job, std::chrono::milliseconds max_wait,
                                  std::string* reject_reason = nullptr);
  /// Non-blocking submission: rejects immediately when the queue is full or
  /// the server is shutting down; `reject_reason` (optional) is set to
  /// "queue-full" or "shutting-down".
  std::optional<JobId> try_submit(Job job,
                                  std::string* reject_reason = nullptr);

  /// Durable, exactly-once submission (the journaled front door).  The spec
  /// is journaled before the job becomes runnable; a spec bearing the
  /// idempotency key of a live job returns that job's id, and one bearing
  /// the key of a finished job re-publishes the stored report under a fresh
  /// id (report.deduped = true) without running anything.  Reject reasons
  /// beyond submit()'s: "bad-job: ..." (the spec does not materialize),
  /// "journal-unavailable" (degraded disk — new admissions shed),
  /// "duplicate-pending" (the key is mid-admission on another thread; retry
  /// shortly).  Without a configured journal these behave like the plain
  /// submit family plus the bad-job check.
  std::optional<JobId> submit_spec(JobSpec spec,
                                   std::string* reject_reason = nullptr);
  std::optional<JobId> submit_spec_for(JobSpec spec,
                                       std::chrono::milliseconds max_wait,
                                       std::string* reject_reason = nullptr);
  std::optional<JobId> try_submit_spec(JobSpec spec,
                                       std::string* reject_reason = nullptr);

  /// The configured journal (nullptr when durability is off) — exposed for
  /// tests and failpoint injection.
  Journal* journal() { return journal_.get(); }

  /// Cooperative cancellation.  True if the job was still pending or
  /// running (its report will read kCancelled unless it finished first);
  /// false if it already reached a terminal state or the id is unknown.
  bool cancel(JobId id);

  /// Block until the job's terminal report is published.
  JobReport wait(JobId id);
  /// Non-blocking probe: true (and *out filled) when the job's terminal
  /// report has been published.  The net layer's report pump uses it to
  /// coalesce already-finished reports into one batch frame without
  /// blocking on unfinished ones.
  bool try_report(JobId id, JobReport* out) const;
  /// Block until every job submitted so far is terminal; returns all
  /// reports published since construction, in submission order.
  std::vector<JobReport> wait_all();

  /// Live view of a job; nullopt for unknown ids.
  std::optional<JobProgress> progress(JobId id) const;

  ServerStats stats() const;
  /// Lock-free health read (the supervisor publishes it each tick) — cheap
  /// enough for the net front door to consult on every shed reply.
  HealthState health() const {
    return static_cast<HealthState>(
        health_.load(std::memory_order_relaxed));
  }
  const JobServerConfig& config() const { return config_; }

  /// Stop admissions.  drain=true: run queued jobs to completion, then
  /// join.  drain=false: queued jobs terminate kCancelled without running,
  /// running jobs are cooperatively cancelled, then join.  Idempotent.
  void shutdown(bool drain = true);

 private:
  struct JobState;
  struct QueuedJob;

  /// Per-tenant scheduling state (guarded by mu_).  Tenants are stride-
  /// scheduled: each dequeue advances the tenant's virtual-time `pass` by
  /// kStrideScale/weight, and the runnable tenant with the smallest pass
  /// goes next — so backlogged tenants interleave proportionally to weight
  /// and a flood parks behind its own pass instead of the global queue.
  struct TenantState {
    std::deque<std::unique_ptr<QueuedJob>> queue;
    std::uint64_t pass = 0;
    unsigned weight = 1;
    unsigned inflight = 0;           // dequeued, not yet terminal/requeued
    std::size_t reserved_bytes = 0;  // memory charged to this tenant
  };

  /// Common submission body: wait for queue space until `deadline`
  /// (time_point::max() = forever).  Sets `reject_reason` on nullopt.
  std::optional<JobId> submit_until(
      Job job, std::chrono::steady_clock::time_point deadline,
      std::string* reject_reason);
  std::optional<JobId> submit_spec_until(
      JobSpec spec, std::chrono::steady_clock::time_point deadline,
      std::string* reject_reason);
  /// Enqueue one journal-recovered job (constructor only, workers not yet
  /// started; bypasses queue capacity — recovered work was already
  /// admitted once).
  void recover_job(const JobSpec& spec, const std::string& checkpoint_file);
  /// Outcome/retry/ECC tallies for one terminal report (mu_ held).
  void apply_terminal_tallies_locked(const JobReport& rep);

  void worker_main();
  void supervisor_main();
  /// Tenant bookkeeping (mu_ held).  tenant_state_locked creates the entry
  /// on first use (weight from config_.tenant_weights, pass joined at the
  /// global virtual time); pick_tenant_locked returns the runnable tenant
  /// with the smallest pass (nullptr: nothing dequeueable).
  TenantState& tenant_state_locked(const std::string& tenant);
  TenantState* pick_tenant_locked();
  bool tenant_over_quota_locked(const std::string& tenant) const;
  void enqueue_locked(std::unique_ptr<QueuedJob> qj);
  /// Put a preempted job back on its tenant queue with its partial report
  /// carried (worker thread, after execute() set qj->requeue).
  void requeue(std::unique_ptr<QueuedJob> qj, JobReport carry);
  JobReport execute(QueuedJob& qj, JobState& st, SimulatorPool* pool);
  template <typename SimT, typename MakeSim>
  void execute_with(MakeSim&& make_sim, QueuedJob& qj, JobState& st,
                    JobReport& rep, SimulatorPool* pool);
  /// Insert the terminal report and update tallies.  When `worker_terminal`,
  /// the caller is a worker that incremented `active_` at dequeue: the
  /// decrement happens in the same critical section as the report insert, so
  /// no observer can see every report published while `active_jobs` is still
  /// nonzero.
  void publish(QueuedJob& qj, JobState& st, JobReport rep,
               bool worker_terminal = false);

  /// Block until `bytes` fits in the budget (or deadline/cancel/shutdown).
  /// Returns false when the wait was interrupted.
  bool reserve_memory(std::size_t bytes, JobState& st,
                      std::chrono::steady_clock::time_point deadline);
  /// Non-blocking reservation used by the RE→dense migration guard.
  bool try_reserve_extra(std::size_t bytes, JobState& st);
  void release_memory(std::size_t bytes, const std::string& tenant);

  JobServerConfig config_;

  /// Serialises concurrent shutdown() calls (destructor vs explicit call);
  /// never taken while holding mu_.
  std::mutex shutdown_mu_;
  mutable std::mutex mu_;
  std::condition_variable queue_cv_;   // workers: queue non-empty / stopping
  std::condition_variable space_cv_;   // submitters: queue has space
  std::condition_variable memory_cv_;  // reservers: budget freed
  std::condition_variable report_cv_;  // waiters: report published
  std::condition_variable drain_cv_;   // shutdown: queue empty, none active

  /// Per-tenant queues (std::map: deterministic iteration makes the stride
  /// scheduler's tie-break stable).  queued_total_ is the cross-tenant
  /// queue depth the global capacity bounds.
  std::map<std::string, TenantState> tenants_;
  std::size_t queued_total_ = 0;
  std::uint64_t global_pass_ = 0;
  std::unordered_map<JobId, std::shared_ptr<JobState>> states_;
  std::unordered_map<JobId, JobReport> reports_;
  std::vector<JobId> submission_order_;
  std::vector<std::thread> workers_;
  std::thread supervisor_;

  JobId next_id_ = 1;
  unsigned active_ = 0;
  bool accepting_ = true;
  bool stopping_ = false;
  bool joined_ = false;

  /// Supervisor lifecycle (its sleep uses its own mutex so ticks never
  /// contend with the hot submit/dequeue path) + the published health.
  std::mutex sup_mu_;
  std::condition_variable sup_cv_;
  bool sup_stop_ = false;
  std::atomic<std::uint8_t> health_{0};

  std::size_t reserved_bytes_ = 0;
  std::size_t peak_reserved_bytes_ = 0;
  ServerStats tallies_;  // terminal-outcome counters, guarded by mu_

  /// Simulator-pool counters (workers bump them lock-free; stats() reads).
  std::atomic<std::uint64_t> pool_hits_{0};
  std::atomic<std::uint64_t> pool_misses_{0};
  /// Shared RE chunk-pool stripes (config_.chunk_shards > 0); immutable
  /// after construction, the stripes themselves are internally locked.
  std::shared_ptr<pbp::ShardedChunkPool> shards_;

  // --- Durability (all guarded by mu_ except the journal itself, which
  // has its own lock and is safe to append to without mu_ held). ---
  std::unique_ptr<Journal> journal_;
  /// Idempotency key → live job id; value 0 = the key is reserved by a
  /// submission currently fsyncing its admit record outside mu_.
  std::unordered_map<std::string, JobId> live_keys_;
  /// Idempotency key → stored terminal report (the exactly-once memory,
  /// seeded from journal replay and grown as jobs finish).
  std::unordered_map<std::string, JobReport> durable_reports_;
  std::uint64_t auto_key_counter_ = 0;
  std::uint64_t key_nonce_ = 0;  // distinguishes auto keys across restarts
};

}  // namespace tangled::serve
